package ingest

import (
	"fmt"
	"testing"

	"sheriff/internal/traces"
)

// benchService builds a racks×vmsPerRack service.
func benchService(b *testing.B, racks, vmsPerRack, queueLimit int, mode TriageMode) (*Service, []Update) {
	b.Helper()
	vmsByRack := make([][]int, racks)
	id := 0
	for r := range vmsByRack {
		for v := 0; v < vmsPerRack; v++ {
			vmsByRack[r] = append(vmsByRack[r], id)
			id++
		}
	}
	s, err := New(vmsByRack, Options{QueueLimit: queueLimit, Mode: mode})
	if err != nil {
		b.Fatal(err)
	}
	// One realistic update per VM, varied profiles so triage does real work.
	gen := traces.NewWorkloadGen(24, 1)
	updates := make([]Update, id)
	for i := range updates {
		updates[i] = Update{VM: i, Profile: gen.Next()}
	}
	return s, updates
}

// BenchmarkOfferProcess is the sustained-ingest benchmark behind
// BENCH_ingest.json: one op offers every VM's update and drains all
// shards, so updates/s is the end-to-end ingest-to-triage throughput.
// Note the p99 caveat: the whole batch is offered before any drain, so
// the reported p99 includes the queue wait of a maximally deep backlog —
// it measures burst absorption, not steady-state latency (see
// BenchmarkOfferProcessInterleaved for that).
func BenchmarkOfferProcess(b *testing.B) {
	for _, mode := range []TriageMode{TriageFloat, TriageQuant} {
		for _, cfg := range []struct{ racks, vms int }{{8, 16}, {32, 32}} {
			b.Run(fmt.Sprintf("mode=%s/racks=%d/vms=%d", mode, cfg.racks, cfg.vms), func(b *testing.B) {
				s, updates := benchService(b, cfg.racks, cfg.vms, cfg.racks*cfg.vms, mode)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := s.OfferBatch(updates); err != nil {
						b.Fatal(err)
					}
					s.ProcessPending()
				}
				b.StopTimer()
				st := s.Stats()
				b.ReportMetric(float64(st.Processed)/b.Elapsed().Seconds(), "updates/s")
				b.ReportMetric(st.LatencyP99*1e6, "p99-µs")
			})
		}
	}
}

// BenchmarkOfferProcessInterleaved drains after each rack-sized chunk of
// offers instead of after the full batch, so queues stay shallow and the
// reported p99 reflects steady-state offer-to-drain latency rather than
// the depth of a deliberately built backlog. Throughput is the same
// end-to-end measure as BenchmarkOfferProcess.
func BenchmarkOfferProcessInterleaved(b *testing.B) {
	for _, mode := range []TriageMode{TriageFloat, TriageQuant} {
		for _, cfg := range []struct{ racks, vms int }{{8, 16}, {32, 32}} {
			b.Run(fmt.Sprintf("mode=%s/racks=%d/vms=%d", mode, cfg.racks, cfg.vms), func(b *testing.B) {
				s, updates := benchService(b, cfg.racks, cfg.vms, cfg.racks*cfg.vms, mode)
				chunk := cfg.vms // one rack's worth of offers between drains
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for lo := 0; lo < len(updates); lo += chunk {
						hi := lo + chunk
						if hi > len(updates) {
							hi = len(updates)
						}
						if _, err := s.OfferBatch(updates[lo:hi]); err != nil {
							b.Fatal(err)
						}
						s.ProcessPending()
					}
				}
				b.StopTimer()
				st := s.Stats()
				b.ReportMetric(float64(st.Processed)/b.Elapsed().Seconds(), "updates/s")
				b.ReportMetric(st.LatencyP99*1e6, "p99-µs")
			})
		}
	}
}

// BenchmarkOfferOnly isolates the producer-side accept path.
func BenchmarkOfferOnly(b *testing.B) {
	s, upd := benchService(b, 8, 16, 1<<20, TriageFloat)
	u := upd[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Offer(u); err != nil {
			b.Fatal(err)
		}
		if i%4096 == 4095 {
			b.StopTimer()
			s.ProcessPending()
			b.StartTimer()
		}
	}
}
