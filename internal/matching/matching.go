// Package matching implements minimum-weight bipartite matching via the
// Kuhn–Munkres (Hungarian) algorithm with potentials ("KM with
// relaxation", the paper's choice for Alg. 3's MinimalWeightedMatching).
// Complexity O(n²m) for an n×m cost matrix with n ≤ m — O(n³) on square
// instances, as the paper states.
//
// Rectangular instances are supported directly: with fewer rows than
// columns every row is matched; forbidden pairs are expressed with
// +Inf cost and rows whose only options are forbidden stay unmatched.
package matching

import (
	"errors"
	"math"
)

// Forbidden marks an impossible assignment in the cost matrix.
var Forbidden = math.Inf(1)

// ErrBadShape is returned for empty or ragged cost matrices.
var ErrBadShape = errors.New("matching: cost matrix must be non-empty and rectangular")

// Result holds a minimum-weight matching.
type Result struct {
	// Assign[i] is the column matched to row i, or -1 if row i could not
	// be matched (all its finite-cost columns were taken or none exist).
	Assign []int
	// Cost is the total weight of the matched pairs.
	Cost float64
}

// Solve computes a minimum-total-weight assignment of rows to columns.
// If rows > columns, only `columns` rows are matched (the cheapest
// overall); unmatched rows get -1.
func Solve(cost [][]float64) (*Result, error) {
	n := len(cost)
	if n == 0 {
		return nil, ErrBadShape
	}
	m := len(cost[0])
	for _, row := range cost {
		if len(row) != m {
			return nil, ErrBadShape
		}
	}
	if m == 0 {
		return nil, ErrBadShape
	}

	// The potentials-based Hungarian algorithm needs rows <= cols; if the
	// instance is taller than wide, pad with dummy columns of large cost
	// and drop those assignments afterwards. Forbidden (+Inf) entries are
	// replaced by a finite "big" sentinel and filtered at the end.
	big := 1.0
	for _, row := range cost {
		for _, v := range row {
			if !math.IsInf(v, 1) && math.Abs(v) > big {
				big = math.Abs(v)
			}
		}
	}
	big = big*float64(n+m+1) + 1

	rows, cols := n, m
	width := cols
	if rows > cols {
		width = rows // pad columns
	}
	a := make([][]float64, rows)
	for i := range a {
		a[i] = make([]float64, width)
		for j := 0; j < width; j++ {
			switch {
			case j >= cols:
				a[i][j] = big // dummy column
			case math.IsInf(cost[i][j], 1):
				a[i][j] = big
			default:
				a[i][j] = cost[i][j]
			}
		}
	}

	// Potentials u (rows), v (cols); matchCol[j] = row matched to column j;
	// way[j] = previous column on the alternating path through column j.
	u := make([]float64, rows+1)
	v := make([]float64, width+1)
	way := make([]int, width+1)
	matchCol := make([]int, width+1)
	for j := range matchCol {
		matchCol[j] = 0 // 1-based sentinel; 0 = free
	}
	// 1-based loop (classic e-maxx formulation).
	for i := 1; i <= rows; i++ {
		matchCol[0] = i
		j0 := 0
		minv := make([]float64, width+1)
		used := make([]bool, width+1)
		for j := range minv {
			minv[j] = math.Inf(1)
		}
		for {
			used[j0] = true
			i0 := matchCol[j0]
			delta := math.Inf(1)
			j1 := -1
			for j := 1; j <= width; j++ {
				if used[j] {
					continue
				}
				cur := a[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= width; j++ {
				if used[j] {
					u[matchCol[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if matchCol[j0] == 0 {
				break
			}
		}
		// Augment along the alternating path.
		for j0 != 0 {
			j1 := way[j0]
			matchCol[j0] = matchCol[j1]
			j0 = j1
		}
	}

	res := &Result{Assign: make([]int, rows)}
	for i := range res.Assign {
		res.Assign[i] = -1
	}
	for j := 1; j <= width; j++ {
		i := matchCol[j]
		if i == 0 {
			continue
		}
		col := j - 1
		if col >= cols {
			continue // dummy column: row stays unmatched
		}
		if math.IsInf(cost[i-1][col], 1) {
			continue // forbidden entry chosen only because nothing better existed
		}
		res.Assign[i-1] = col
		res.Cost += cost[i-1][col]
	}
	return res, nil
}
