package matching

import (
	"math"
	"testing"
)

// FuzzSolve feeds arbitrary square matrices to the Hungarian solver: it
// must never panic, and every returned assignment must be injective with
// a cost equal to the sum of its chosen cells.
func FuzzSolve(f *testing.F) {
	f.Add(uint8(2), int64(1))
	f.Add(uint8(5), int64(42))
	f.Fuzz(func(t *testing.T, nRaw uint8, seed int64) {
		n := int(nRaw%7) + 1
		cost := make([][]float64, n)
		s := seed
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			v := float64((s >> 12) % 1000)
			if s%13 == 0 {
				return Forbidden
			}
			return v
		}
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = next()
			}
		}
		r, err := Solve(cost)
		if err != nil {
			t.Fatalf("Solve errored on valid shape: %v", err)
		}
		seen := map[int]bool{}
		total := 0.0
		for i, j := range r.Assign {
			if j == -1 {
				continue
			}
			if j < 0 || j >= n {
				t.Fatalf("assignment out of range: %d", j)
			}
			if seen[j] {
				t.Fatalf("column %d assigned twice", j)
			}
			seen[j] = true
			if math.IsInf(cost[i][j], 1) {
				t.Fatalf("forbidden cell chosen at (%d,%d)", i, j)
			}
			total += cost[i][j]
		}
		if math.Abs(total-r.Cost) > 1e-6 {
			t.Fatalf("cost %v does not match cells %v", r.Cost, total)
		}
	})
}
