package matching

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveIdentity(t *testing.T) {
	cost := [][]float64{
		{0, 9, 9},
		{9, 0, 9},
		{9, 9, 0},
	}
	r, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cost != 0 {
		t.Fatalf("Cost = %v, want 0", r.Cost)
	}
	for i, j := range r.Assign {
		if i != j {
			t.Fatalf("Assign = %v, want identity", r.Assign)
		}
	}
}

func TestSolveAntiDiagonal(t *testing.T) {
	cost := [][]float64{
		{9, 9, 1},
		{9, 1, 9},
		{1, 9, 9},
	}
	r, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cost != 3 {
		t.Fatalf("Cost = %v, want 3", r.Cost)
	}
}

func TestSolveClassicExample(t *testing.T) {
	// Known optimum: 1500+2000+2500? Classic 3x3 worker/job instance.
	cost := [][]float64{
		{2500, 4000, 3500},
		{4000, 6000, 3500},
		{2000, 4000, 2500},
	}
	r, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: row0->col1 (4000), row1->col2 (3500), row2->col0 (2000) = 9500.
	if r.Cost != 9500 {
		t.Fatalf("Cost = %v, want 9500 (assign %v)", r.Cost, r.Assign)
	}
}

func TestSolveRectangularWide(t *testing.T) {
	// 2 rows, 4 columns: both rows matched to their cheapest distinct cols.
	cost := [][]float64{
		{5, 1, 8, 9},
		{5, 1, 2, 9},
	}
	r, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cost != 3 { // row0->col1 (1), row1->col2 (2)
		t.Fatalf("Cost = %v, want 3 (assign %v)", r.Cost, r.Assign)
	}
	if r.Assign[0] == r.Assign[1] {
		t.Fatal("two rows matched the same column")
	}
}

func TestSolveRectangularTall(t *testing.T) {
	// 3 rows, 1 column: only one row can match.
	cost := [][]float64{{5}, {2}, {7}}
	r, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	matched := 0
	for i, j := range r.Assign {
		if j != -1 {
			matched++
			if i != 1 {
				t.Fatalf("wrong row matched: %v", r.Assign)
			}
		}
	}
	if matched != 1 || r.Cost != 2 {
		t.Fatalf("matched=%d cost=%v", matched, r.Cost)
	}
}

func TestSolveForbiddenPairs(t *testing.T) {
	cost := [][]float64{
		{Forbidden, 3},
		{4, Forbidden},
	}
	r, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if r.Assign[0] != 1 || r.Assign[1] != 0 || r.Cost != 7 {
		t.Fatalf("assign=%v cost=%v", r.Assign, r.Cost)
	}
}

func TestSolveAllForbiddenRowUnmatched(t *testing.T) {
	cost := [][]float64{
		{Forbidden, Forbidden},
		{1, 2},
	}
	r, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if r.Assign[0] != -1 {
		t.Fatalf("fully forbidden row should be unmatched: %v", r.Assign)
	}
	if r.Assign[1] != 0 || r.Cost != 1 {
		t.Fatalf("assign=%v cost=%v", r.Assign, r.Cost)
	}
}

func TestSolveShapeErrors(t *testing.T) {
	if _, err := Solve(nil); err == nil {
		t.Error("nil matrix accepted")
	}
	if _, err := Solve([][]float64{{}}); err == nil {
		t.Error("zero-column matrix accepted")
	}
	if _, err := Solve([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged matrix accepted")
	}
}

func TestSolveSingleCell(t *testing.T) {
	r, err := Solve([][]float64{{42}})
	if err != nil {
		t.Fatal(err)
	}
	if r.Assign[0] != 0 || r.Cost != 42 {
		t.Fatalf("single cell wrong: %+v", r)
	}
}

func TestSolveNegativeCosts(t *testing.T) {
	cost := [][]float64{
		{-5, 0},
		{0, -5},
	}
	r, err := Solve(cost)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cost != -10 {
		t.Fatalf("Cost = %v, want -10", r.Cost)
	}
}

// bruteForce finds the optimal assignment by exhaustive permutation
// (square matrices, n ≤ 7).
func bruteForce(cost [][]float64) float64 {
	n := len(cost)
	cols := make([]int, n)
	for i := range cols {
		cols[i] = i
	}
	best := math.Inf(1)
	var permute func(k int)
	permute = func(k int) {
		if k == n {
			total := 0.0
			for i, j := range cols {
				total += cost[i][j]
			}
			if total < best {
				best = total
			}
			return
		}
		for i := k; i < n; i++ {
			cols[k], cols[i] = cols[i], cols[k]
			permute(k + 1)
			cols[k], cols[i] = cols[i], cols[k]
		}
	}
	permute(0)
	return best
}

// Property: the Hungarian solution matches brute force on random square
// instances.
func TestSolveMatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%5) + 2 // 2..6
		rng := rand.New(rand.NewSource(seed))
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = math.Floor(rng.Float64() * 100)
			}
		}
		r, err := Solve(cost)
		if err != nil {
			return false
		}
		return math.Abs(r.Cost-bruteForce(cost)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: no column is assigned twice.
func TestSolveInjectiveProperty(t *testing.T) {
	f := func(seed int64, rRaw, cRaw uint8) bool {
		rows := int(rRaw%6) + 1
		cols := int(cRaw%6) + 1
		rng := rand.New(rand.NewSource(seed))
		cost := make([][]float64, rows)
		for i := range cost {
			cost[i] = make([]float64, cols)
			for j := range cost[i] {
				cost[i][j] = rng.Float64() * 50
			}
		}
		r, err := Solve(cost)
		if err != nil {
			return false
		}
		seen := map[int]bool{}
		matched := 0
		for _, j := range r.Assign {
			if j == -1 {
				continue
			}
			if seen[j] {
				return false
			}
			seen[j] = true
			matched++
		}
		want := rows
		if cols < want {
			want = cols
		}
		return matched == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
