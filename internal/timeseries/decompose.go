package timeseries

import (
	"errors"
	"fmt"
)

// Decomposition is the classical additive split Y_t = T_t + S_t + R_t of
// a seasonal series into trend, seasonal, and residual components. The
// Box–Jenkins identification step (Sec. IV.B) uses exactly this view of
// the data: the trend motivates the d in ARIMA(p,d,q), the seasonal
// component the seasonal differencing, and the residual the ARMA part.
type Decomposition struct {
	Trend    *Series // centered-moving-average trend (NaN-free: edges extended)
	Seasonal *Series // repeating seasonal pattern, mean zero
	Residual *Series // what remains
	Period   int
}

// Decompose performs classical additive decomposition with the given
// season length. The series must cover at least two full periods.
func Decompose(s *Series, period int) (*Decomposition, error) {
	if period < 2 {
		return nil, errors.New("timeseries: period must be >= 2")
	}
	n := s.Len()
	if n < 2*period {
		return nil, fmt.Errorf("timeseries: need >= 2 periods (%d points), have %d", 2*period, n)
	}
	// Centered moving average of window `period` (even windows use the
	// standard half-weight endpoints).
	trend := make([]float64, n)
	half := period / 2
	for t := 0; t < n; t++ {
		lo, hi := t-half, t+half
		if lo < 0 || hi >= n {
			trend[t] = 0 // filled by edge extension below
			continue
		}
		if period%2 == 0 {
			sum := 0.5*s.At(lo) + 0.5*s.At(hi)
			for i := lo + 1; i < hi; i++ {
				sum += s.At(i)
			}
			trend[t] = sum / float64(period)
		} else {
			sum := 0.0
			for i := lo; i <= hi; i++ {
				sum += s.At(i)
			}
			trend[t] = sum / float64(period)
		}
	}
	// Extend the trend to the edges by repeating the first/last defined
	// values (simple and adequate for diagnostics).
	for t := 0; t < half; t++ {
		trend[t] = trend[half]
	}
	for t := n - half; t < n; t++ {
		trend[t] = trend[n-half-1]
	}

	// Seasonal component: average detrended values per phase, centered to
	// mean zero.
	phase := make([]float64, period)
	count := make([]int, period)
	for t := 0; t < n; t++ {
		phase[t%period] += s.At(t) - trend[t]
		count[t%period]++
	}
	mean := 0.0
	for p := 0; p < period; p++ {
		if count[p] > 0 {
			phase[p] /= float64(count[p])
		}
		mean += phase[p]
	}
	mean /= float64(period)
	for p := range phase {
		phase[p] -= mean
	}

	seasonal := make([]float64, n)
	residual := make([]float64, n)
	for t := 0; t < n; t++ {
		seasonal[t] = phase[t%period]
		residual[t] = s.At(t) - trend[t] - seasonal[t]
	}
	return &Decomposition{
		Trend:    &Series{data: trend},
		Seasonal: &Series{data: seasonal},
		Residual: &Series{data: residual},
		Period:   period,
	}, nil
}

// SeasonalStrength returns 1 − Var(R)/Var(S+R) in [0,1]: near 1 means the
// seasonal component dominates the detrended variation (Hyndman's F_S).
func (d *Decomposition) SeasonalStrength() float64 {
	sr := make([]float64, d.Residual.Len())
	for t := range sr {
		sr[t] = d.Seasonal.At(t) + d.Residual.At(t)
	}
	denom := (&Series{data: sr}).Variance()
	if denom == 0 {
		return 0
	}
	f := 1 - d.Residual.Variance()/denom
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// TrendStrength returns 1 − Var(R)/Var(T+R) in [0,1].
func (d *Decomposition) TrendStrength() float64 {
	tr := make([]float64, d.Residual.Len())
	for t := range tr {
		tr[t] = d.Trend.At(t) + d.Residual.At(t)
	}
	denom := (&Series{data: tr}).Variance()
	if denom == 0 {
		return 0
	}
	f := 1 - d.Residual.Variance()/denom
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// DetectPeriod estimates the dominant season length by scanning the
// autocorrelation function for its strongest local peak in [minP, maxP].
// It returns 0 when no lag shows meaningful correlation (< 0.2).
func DetectPeriod(s *Series, minP, maxP int) int {
	if minP < 2 {
		minP = 2
	}
	if maxP >= s.Len()/2 {
		maxP = s.Len()/2 - 1
	}
	if maxP < minP {
		return 0
	}
	acf, err := ACF(s, maxP)
	if err != nil {
		return 0
	}
	best, bestLag := 0.2, 0
	for lag := minP; lag <= maxP; lag++ {
		// Local peak: higher than neighbors.
		if acf[lag] > best && acf[lag] >= acf[lag-1] && (lag+1 > maxP || acf[lag] >= acf[lag+1]) {
			best, bestLag = acf[lag], lag
		}
	}
	return bestLag
}
