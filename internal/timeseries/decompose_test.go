package timeseries

import (
	"math"
	"math/rand"
	"testing"
)

func seasonalWithTrend(n, period int, amp, slope, noise float64, seed int64) *Series {
	rng := rand.New(rand.NewSource(seed))
	return FromFunc(n, func(t int) float64 {
		return slope*float64(t) + amp*math.Sin(2*math.Pi*float64(t)/float64(period)) + noise*rng.NormFloat64()
	})
}

func TestDecomposeValidation(t *testing.T) {
	s := New([]float64{1, 2, 3})
	if _, err := Decompose(s, 1); err == nil {
		t.Error("period 1 accepted")
	}
	if _, err := Decompose(s, 2); err == nil {
		t.Error("too-short series accepted")
	}
}

func TestDecomposeRecompositionIdentity(t *testing.T) {
	s := seasonalWithTrend(240, 12, 5, 0.1, 1, 1)
	d, err := Decompose(s, 12)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.Len(); i++ {
		sum := d.Trend.At(i) + d.Seasonal.At(i) + d.Residual.At(i)
		if math.Abs(sum-s.At(i)) > 1e-9 {
			t.Fatalf("T+S+R != Y at %d: %v vs %v", i, sum, s.At(i))
		}
	}
}

func TestDecomposeSeasonalMeanZero(t *testing.T) {
	s := seasonalWithTrend(240, 12, 5, 0.1, 1, 2)
	d, err := Decompose(s, 12)
	if err != nil {
		t.Fatal(err)
	}
	// One full period of the seasonal component sums to ~0.
	sum := 0.0
	for p := 0; p < 12; p++ {
		sum += d.Seasonal.At(p)
	}
	if math.Abs(sum) > 1e-9 {
		t.Fatalf("seasonal period sum = %v", sum)
	}
	// Seasonal repeats with the period.
	for tt := 0; tt < 24; tt++ {
		if d.Seasonal.At(tt) != d.Seasonal.At(tt+12) {
			t.Fatal("seasonal component not periodic")
		}
	}
}

func TestDecomposeRecoversTrendSlope(t *testing.T) {
	s := seasonalWithTrend(480, 24, 10, 0.5, 0.5, 3)
	d, err := Decompose(s, 24)
	if err != nil {
		t.Fatal(err)
	}
	// The interior trend should rise at ≈0.5/step.
	lo, hi := 50, 400
	slope := (d.Trend.At(hi) - d.Trend.At(lo)) / float64(hi-lo)
	if math.Abs(slope-0.5) > 0.05 {
		t.Fatalf("trend slope = %v, want ≈ 0.5", slope)
	}
}

func TestDecomposeRecoversSeasonalAmplitude(t *testing.T) {
	s := seasonalWithTrend(480, 24, 10, 0.1, 0.5, 4)
	d, err := Decompose(s, 24)
	if err != nil {
		t.Fatal(err)
	}
	if max := d.Seasonal.Max(); math.Abs(max-10) > 1.5 {
		t.Fatalf("seasonal peak = %v, want ≈ 10", max)
	}
}

func TestSeasonalStrength(t *testing.T) {
	strong := seasonalWithTrend(480, 24, 10, 0, 0.5, 5)
	d, err := Decompose(strong, 24)
	if err != nil {
		t.Fatal(err)
	}
	if d.SeasonalStrength() < 0.9 {
		t.Fatalf("strong season strength = %v, want > 0.9", d.SeasonalStrength())
	}
	rng := rand.New(rand.NewSource(6))
	noise := FromFunc(480, func(int) float64 { return rng.NormFloat64() })
	dn, err := Decompose(noise, 24)
	if err != nil {
		t.Fatal(err)
	}
	if dn.SeasonalStrength() > 0.5 {
		t.Fatalf("white-noise season strength = %v, want small", dn.SeasonalStrength())
	}
}

func TestTrendStrength(t *testing.T) {
	trending := seasonalWithTrend(480, 24, 0.5, 1.0, 0.5, 7)
	d, err := Decompose(trending, 24)
	if err != nil {
		t.Fatal(err)
	}
	if d.TrendStrength() < 0.9 {
		t.Fatalf("strong trend strength = %v, want > 0.9", d.TrendStrength())
	}
}

func TestDecomposeOddPeriod(t *testing.T) {
	s := seasonalWithTrend(210, 7, 5, 0, 0.3, 8)
	d, err := Decompose(s, 7)
	if err != nil {
		t.Fatal(err)
	}
	if d.SeasonalStrength() < 0.8 {
		t.Fatalf("odd-period decomposition weak: %v", d.SeasonalStrength())
	}
}

func TestDetectPeriod(t *testing.T) {
	s := seasonalWithTrend(600, 24, 10, 0, 1, 9)
	if got := DetectPeriod(s, 2, 100); got < 22 || got > 26 {
		t.Fatalf("DetectPeriod = %d, want ≈ 24", got)
	}
	rng := rand.New(rand.NewSource(10))
	noise := FromFunc(600, func(int) float64 { return rng.NormFloat64() })
	if got := DetectPeriod(noise, 2, 100); got != 0 {
		t.Fatalf("DetectPeriod on noise = %d, want 0", got)
	}
	// Degenerate ranges.
	if DetectPeriod(New([]float64{1, 2, 3}), 5, 4) != 0 {
		t.Fatal("invalid range should return 0")
	}
}
