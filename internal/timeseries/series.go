// Package timeseries provides the time-series primitives underlying the
// Sheriff pre-alert mechanism: series containers, lag and difference
// operators, autocorrelation estimates, normalization, splitting, and
// forecast-error metrics.
//
// The paper (Sec. IV.B) works with a series {Y_t}, the lag operator
// L^j Y_t = Y_{t-j}, and the difference operator ∇Y_t = Y_t - Y_{t-1}.
// Everything here is a direct, allocation-conscious realization of those
// definitions.
package timeseries

import (
	"errors"
	"fmt"
	"math"
)

// Series is an equally spaced univariate time series. The zero value is an
// empty series ready to append to.
type Series struct {
	data []float64
}

// New returns a Series wrapping a copy of data.
func New(data []float64) *Series {
	s := &Series{data: make([]float64, len(data))}
	copy(s.data, data)
	return s
}

// FromFunc builds a Series of n points by sampling f at t = 0..n-1.
func FromFunc(n int, f func(t int) float64) *Series {
	data := make([]float64, n)
	for t := range data {
		data[t] = f(t)
	}
	return &Series{data: data}
}

// Len returns the number of observations.
func (s *Series) Len() int { return len(s.data) }

// At returns the t-th observation (0-indexed). It panics if t is out of
// range, mirroring slice semantics.
func (s *Series) At(t int) float64 { return s.data[t] }

// Last returns the most recent observation. It panics on an empty series.
func (s *Series) Last() float64 { return s.data[len(s.data)-1] }

// Append adds observations to the end of the series.
func (s *Series) Append(values ...float64) { s.data = append(s.data, values...) }

// Values returns a copy of the underlying observations.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.data))
	copy(out, s.data)
	return out
}

// Raw returns the underlying slice without copying. Callers must not
// modify it unless they own the series.
func (s *Series) Raw() []float64 { return s.data }

// Slice returns the sub-series [from, to). Data is copied.
func (s *Series) Slice(from, to int) *Series {
	if from < 0 || to > len(s.data) || from > to {
		panic(fmt.Sprintf("timeseries: slice [%d, %d) out of range for length %d", from, to, len(s.data)))
	}
	return New(s.data[from:to])
}

// Clone returns a deep copy of the series.
func (s *Series) Clone() *Series { return New(s.data) }

// Lag returns the series shifted by j: result[t] = s[t-j], defined for
// t >= j, so the result has Len()-j points. Lag(0) is a copy.
func (s *Series) Lag(j int) (*Series, error) {
	if j < 0 {
		return nil, errors.New("timeseries: negative lag")
	}
	if j > len(s.data) {
		return nil, fmt.Errorf("timeseries: lag %d exceeds series length %d", j, len(s.data))
	}
	return New(s.data[:len(s.data)-j]), nil
}

// Mean returns the arithmetic mean of the series, or 0 for an empty series.
func (s *Series) Mean() float64 {
	if len(s.data) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.data {
		sum += v
	}
	return sum / float64(len(s.data))
}

// Variance returns the population variance of the series.
func (s *Series) Variance() float64 {
	if len(s.data) == 0 {
		return 0
	}
	m := s.Mean()
	sum := 0.0
	for _, v := range s.data {
		d := v - m
		sum += d * d
	}
	return sum / float64(len(s.data))
}

// Std returns the population standard deviation.
func (s *Series) Std() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation, or +Inf for an empty series.
func (s *Series) Min() float64 {
	min := math.Inf(1)
	for _, v := range s.data {
		if v < min {
			min = v
		}
	}
	return min
}

// Max returns the largest observation, or -Inf for an empty series.
func (s *Series) Max() float64 {
	max := math.Inf(-1)
	for _, v := range s.data {
		if v > max {
			max = v
		}
	}
	return max
}

// Split divides the series into train and test parts, with frac (0..1) of
// the observations in the train part. Fig. 6 uses frac=0.5, Fig. 7 uses 0.7.
func (s *Series) Split(frac float64) (train, test *Series) {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(math.Round(frac * float64(len(s.data))))
	return s.Slice(0, n), s.Slice(n, len(s.data))
}

// Normalized returns a copy of the series rescaled to [0, 1], together with
// the affine transform needed to invert it. A constant series maps to all
// zeros. The paper requires each workload-profile component normalized to
// [0, 1] (Sec. IV.A).
func (s *Series) Normalized() (*Series, Scale) {
	lo, hi := s.Min(), s.Max()
	sc := Scale{Offset: lo, Factor: hi - lo}
	if sc.Factor == 0 || math.IsInf(lo, 0) {
		sc = Scale{Offset: lo, Factor: 1}
		if math.IsInf(lo, 0) {
			sc.Offset = 0
		}
	}
	out := make([]float64, len(s.data))
	for i, v := range s.data {
		out[i] = (v - sc.Offset) / sc.Factor
	}
	return &Series{data: out}, sc
}

// Scale is the affine transform y = (x - Offset) / Factor used by
// Normalized. Invert maps a normalized value back to the original range.
type Scale struct {
	Offset float64
	Factor float64
}

// Invert maps a normalized value back to the original units.
func (sc Scale) Invert(v float64) float64 { return v*sc.Factor + sc.Offset }

// Apply maps an original-unit value into normalized coordinates.
func (sc Scale) Apply(v float64) float64 {
	if sc.Factor == 0 {
		return 0
	}
	return (v - sc.Offset) / sc.Factor
}
