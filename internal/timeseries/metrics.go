package timeseries

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
)

// ErrLengthMismatch is returned when paired series have different lengths.
var ErrLengthMismatch = errors.New("timeseries: series length mismatch")

// MSE returns the mean squared error between actual and predicted values.
// It is the fitness metric MSE_f(t, T_p) of Eqn. (14) when applied to a
// sliding window of one-step-ahead errors.
func MSE(actual, predicted []float64) (float64, error) {
	if len(actual) != len(predicted) {
		return 0, ErrLengthMismatch
	}
	if len(actual) == 0 {
		return 0, errors.New("timeseries: MSE of empty input")
	}
	sum := 0.0
	for i := range actual {
		d := actual[i] - predicted[i]
		sum += d * d
	}
	return sum / float64(len(actual)), nil
}

// RMSE returns the root mean squared error.
func RMSE(actual, predicted []float64) (float64, error) {
	m, err := MSE(actual, predicted)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(m), nil
}

// MAE returns the mean absolute error.
func MAE(actual, predicted []float64) (float64, error) {
	if len(actual) != len(predicted) {
		return 0, ErrLengthMismatch
	}
	if len(actual) == 0 {
		return 0, errors.New("timeseries: MAE of empty input")
	}
	sum := 0.0
	for i := range actual {
		sum += math.Abs(actual[i] - predicted[i])
	}
	return sum / float64(len(actual)), nil
}

// MAPE returns the mean absolute percentage error, skipping points where
// the actual value is zero (they would divide by zero).
func MAPE(actual, predicted []float64) (float64, error) {
	if len(actual) != len(predicted) {
		return 0, ErrLengthMismatch
	}
	sum, count := 0.0, 0
	for i := range actual {
		if actual[i] == 0 {
			continue
		}
		sum += math.Abs((actual[i] - predicted[i]) / actual[i])
		count++
	}
	if count == 0 {
		return 0, errors.New("timeseries: MAPE undefined (all actuals zero)")
	}
	return sum / float64(count) * 100, nil
}

// RollingMSE maintains the sliding-window mean squared prediction error of
// Eqn. (14): MSE_f(t, T_p) = (1/T_p) Σ_{i=t-T_p+1}^{t} ERROR_f(i)².
// The zero value is not usable; construct with NewRollingMSE.
type RollingMSE struct {
	window []float64 // squared errors, ring buffer
	next   int
	filled int
	sum    float64
}

// NewRollingMSE creates a rolling MSE tracker over the last size errors.
func NewRollingMSE(size int) *RollingMSE {
	if size <= 0 {
		size = 1
	}
	return &RollingMSE{window: make([]float64, size)}
}

// Observe records one prediction error (actual − predicted).
func (r *RollingMSE) Observe(err float64) {
	sq := err * err
	if r.filled == len(r.window) {
		r.sum -= r.window[r.next]
	} else {
		r.filled++
	}
	r.window[r.next] = sq
	r.sum += sq
	r.next = (r.next + 1) % len(r.window)
}

// Value returns the current windowed MSE. With no observations it returns
// +Inf so an untested model never wins dynamic selection.
func (r *RollingMSE) Value() float64 {
	if r.filled == 0 {
		return math.Inf(1)
	}
	// Guard against drift-accumulated tiny negatives.
	if r.sum < 0 {
		return 0
	}
	return r.sum / float64(r.filled)
}

// Count returns how many errors have been observed (capped at window size).
func (r *RollingMSE) Count() int { return r.filled }

// Reset clears the tracker.
func (r *RollingMSE) Reset() {
	for i := range r.window {
		r.window[i] = 0
	}
	r.next, r.filled, r.sum = 0, 0, 0
}

// rollingJSON is the serialized form of RollingMSE. The running sum is
// carried explicitly rather than recomputed so a roundtrip reproduces
// Value() bit-identically, including any accumulated floating-point
// drift of the subtract-and-add ring update.
type rollingJSON struct {
	Window []float64 `json:"window"`
	Next   int       `json:"next"`
	Filled int       `json:"filled"`
	Sum    float64   `json:"sum"`
}

// MarshalJSON implements json.Marshaler.
func (r *RollingMSE) MarshalJSON() ([]byte, error) {
	return json.Marshal(rollingJSON{Window: r.window, Next: r.next, Filled: r.filled, Sum: r.sum})
}

// UnmarshalJSON implements json.Unmarshaler.
func (r *RollingMSE) UnmarshalJSON(data []byte) error {
	var js rollingJSON
	if err := json.Unmarshal(data, &js); err != nil {
		return err
	}
	if len(js.Window) == 0 {
		return errors.New("timeseries: RollingMSE with empty window")
	}
	if js.Next < 0 || js.Next >= len(js.Window) || js.Filled < 0 || js.Filled > len(js.Window) {
		return fmt.Errorf("timeseries: RollingMSE state out of range (next=%d filled=%d size=%d)",
			js.Next, js.Filled, len(js.Window))
	}
	r.window = js.Window
	r.next = js.Next
	r.filled = js.Filled
	r.sum = js.Sum
	return nil
}
