package timeseries

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDiff(t *testing.T) {
	s := New([]float64{1, 4, 9, 16})
	d, err := Diff(s)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 5, 7}
	for i, w := range want {
		if d.At(i) != w {
			t.Errorf("Diff[%d] = %v, want %v", i, d.At(i), w)
		}
	}
}

func TestDiffTooShort(t *testing.T) {
	if _, err := Diff(New([]float64{1})); err == nil {
		t.Fatal("expected error for short series")
	}
}

func TestDiffNZeroIsCopy(t *testing.T) {
	s := New([]float64{1, 2, 3})
	d, err := DiffN(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	d.Append(99)
	if s.Len() != 3 {
		t.Fatal("DiffN(0) must not alias the input")
	}
}

func TestDiffNRemovesPolynomialTrend(t *testing.T) {
	// A quadratic becomes constant after two differences.
	s := FromFunc(20, func(t int) float64 { return float64(t*t) + 3*float64(t) + 7 })
	d, err := DiffN(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.Len(); i++ {
		if !almostEqual(d.At(i), 2, 1e-9) {
			t.Fatalf("second difference of quadratic should be 2, got %v at %d", d.At(i), i)
		}
	}
}

func TestDiffNNegative(t *testing.T) {
	if _, err := DiffN(New([]float64{1, 2}), -1); err == nil {
		t.Fatal("expected error for negative order")
	}
}

func TestSeasonalDiff(t *testing.T) {
	s := New([]float64{1, 2, 3, 11, 12, 13})
	d, err := SeasonalDiff(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.Len(); i++ {
		if d.At(i) != 10 {
			t.Fatalf("seasonal diff should be 10, got %v", d.At(i))
		}
	}
	if _, err := SeasonalDiff(s, 0); err == nil {
		t.Error("period 0 should error")
	}
	if _, err := SeasonalDiff(s, 6); err == nil {
		t.Error("period >= length should error")
	}
}

func TestIntegrateInvertsDiff(t *testing.T) {
	s := New([]float64{5, 3, 8, 8, 1})
	d, err := Diff(s)
	if err != nil {
		t.Fatal(err)
	}
	r := Integrate(d, s.At(0))
	if r.Len() != s.Len() {
		t.Fatalf("length %d, want %d", r.Len(), s.Len())
	}
	for i := 0; i < s.Len(); i++ {
		if !almostEqual(r.At(i), s.At(i), 1e-12) {
			t.Fatalf("Integrate(Diff) mismatch at %d: %v vs %v", i, r.At(i), s.At(i))
		}
	}
}

func TestDiffTails(t *testing.T) {
	s := New([]float64{1, 3, 6, 10}) // diffs: 2,3,4; second diffs: 1,1
	tails, err := DiffTails(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tails[0] != 10 || tails[1] != 4 {
		t.Fatalf("tails = %v, want [10 4]", tails)
	}
}

func TestIntegrateForecastOrder1(t *testing.T) {
	// Original series ends at 10; forecast differences are 2, 3.
	// Reconstructed levels should be 12, 15.
	out := IntegrateForecast([]float64{2, 3}, []float64{10})
	if out[0] != 12 || out[1] != 15 {
		t.Fatalf("got %v, want [12 15]", out)
	}
}

func TestIntegrateForecastOrder2(t *testing.T) {
	// s = t^2: 0 1 4 9 16; ∇ = 1 3 5 7; ∇² = 2 2 2.
	// Forecasting ∇² = 2,2 should reconstruct 25, 36.
	out := IntegrateForecast([]float64{2, 2}, []float64{16, 7})
	if out[0] != 25 || out[1] != 36 {
		t.Fatalf("got %v, want [25 36]", out)
	}
}

// Property: IntegrateForecast with the true future differences reproduces
// the true future values exactly, for any differencing order 0..3.
func TestIntegrateForecastRoundTripProperty(t *testing.T) {
	f := func(seed int64, dRaw uint8) bool {
		d := int(dRaw % 4)
		n := 40
		s := FromFunc(n+5, func(t int) float64 {
			x := float64(t)
			return 0.5*x*x + math.Sin(x*float64(seed%5+1)*0.37)*10
		})
		hist := s.Slice(0, n)
		future := s.Slice(n, n+5)
		// Difference the whole series, then extract the "future" part of
		// the differenced series as a perfect forecast.
		dAll, err := DiffN(s, d)
		if err != nil {
			return false
		}
		fcDiff := make([]float64, 5)
		for i := 0; i < 5; i++ {
			fcDiff[i] = dAll.At(dAll.Len() - 5 + i)
		}
		tails, err := DiffTails(hist, d)
		if err != nil {
			return false
		}
		rec := IntegrateForecast(fcDiff, tails)
		for i := 0; i < 5; i++ {
			if !almostEqual(rec[i], future.At(i), 1e-6*math.Max(1, math.Abs(future.At(i)))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
