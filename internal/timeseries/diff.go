package timeseries

import (
	"errors"
	"fmt"
)

// Diff applies the lag-1 difference operator ∇Y_t = Y_t − Y_{t−1} once.
// The result has one fewer observation than the input.
func Diff(s *Series) (*Series, error) {
	if s.Len() < 2 {
		return nil, errors.New("timeseries: need at least 2 observations to difference")
	}
	out := make([]float64, s.Len()-1)
	for t := 1; t < s.Len(); t++ {
		out[t-1] = s.At(t) - s.At(t-1)
	}
	return &Series{data: out}, nil
}

// DiffN applies ∇^d, the d-fold composition of the difference operator
// (∇^j Y_t = ∇(∇^{j−1} Y_t), with ∇^0 Y_t = Y_t as in Sec. IV.B).
func DiffN(s *Series, d int) (*Series, error) {
	if d < 0 {
		return nil, errors.New("timeseries: negative differencing order")
	}
	cur := s
	for i := 0; i < d; i++ {
		next, err := Diff(cur)
		if err != nil {
			return nil, fmt.Errorf("timeseries: differencing pass %d: %w", i+1, err)
		}
		cur = next
	}
	if cur == s {
		return s.Clone(), nil
	}
	return cur, nil
}

// SeasonalDiff applies the seasonal difference Y_t − Y_{t−period}.
func SeasonalDiff(s *Series, period int) (*Series, error) {
	if period <= 0 {
		return nil, errors.New("timeseries: seasonal period must be positive")
	}
	if s.Len() <= period {
		return nil, fmt.Errorf("timeseries: series length %d too short for seasonal period %d", s.Len(), period)
	}
	out := make([]float64, s.Len()-period)
	for t := period; t < s.Len(); t++ {
		out[t-period] = s.At(t) - s.At(t-period)
	}
	return &Series{data: out}, nil
}

// Integrate inverts one application of Diff. Given the differenced series
// and the last d original values preceding it ("heads", most recent last),
// it reconstructs the original scale. For d=1, heads holds the single value
// Y_0 and Integrate returns the cumulative sum anchored at it.
func Integrate(diffed *Series, head float64) *Series {
	out := make([]float64, diffed.Len()+1)
	out[0] = head
	for t := 0; t < diffed.Len(); t++ {
		out[t+1] = out[t] + diffed.At(t)
	}
	return &Series{data: out}
}

// IntegrateForecast undoes d-fold differencing for a block of h forecasts.
// tails[i] is the last value of the (i)-times-differenced original series,
// for i = 0..d-1 (tails[0] is the last original observation). This is the
// recursion the paper's Eqn. (12) expresses as P_t Y_{t+h} = (∇^{-d}) P_t y.
func IntegrateForecast(forecast []float64, tails []float64) []float64 {
	out := make([]float64, len(forecast))
	copy(out, forecast)
	// Undo one level of differencing at a time, innermost first.
	for level := len(tails) - 1; level >= 0; level-- {
		prev := tails[level]
		for i := range out {
			out[i] += prev
			prev = out[i]
		}
	}
	return out
}

// DiffTails returns, for differencing order d, the tail values needed by
// IntegrateForecast: tails[i] is the final observation of ∇^i applied to s,
// for i = 0..d-1.
func DiffTails(s *Series, d int) ([]float64, error) {
	tails := make([]float64, d)
	cur := s
	for i := 0; i < d; i++ {
		if cur.Len() == 0 {
			return nil, errors.New("timeseries: series exhausted while computing difference tails")
		}
		tails[i] = cur.Last()
		next, err := Diff(cur)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return tails, nil
}
