package timeseries

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMSE(t *testing.T) {
	m, err := MSE([]float64{1, 2, 3}, []float64{1, 2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(m, 4.0/3.0, 1e-12) {
		t.Fatalf("MSE = %v, want 4/3", m)
	}
}

func TestMSEErrors(t *testing.T) {
	if _, err := MSE([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := MSE(nil, nil); err == nil {
		t.Error("empty input should error")
	}
}

func TestRMSE(t *testing.T) {
	r, err := RMSE([]float64{0, 0}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, math.Sqrt(12.5), 1e-12) {
		t.Fatalf("RMSE = %v", r)
	}
}

func TestMAE(t *testing.T) {
	m, err := MAE([]float64{1, 2, 3}, []float64{2, 0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(m, 1, 1e-12) {
		t.Fatalf("MAE = %v, want 1", m)
	}
	if _, err := MAE([]float64{1}, nil); err == nil {
		t.Error("mismatch should error")
	}
}

func TestMAPE(t *testing.T) {
	m, err := MAPE([]float64{100, 200}, []float64{110, 180})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(m, 10, 1e-12) {
		t.Fatalf("MAPE = %v, want 10", m)
	}
	if _, err := MAPE([]float64{0, 0}, []float64{1, 1}); err == nil {
		t.Error("all-zero actuals should error")
	}
}

func TestRollingMSEWindowEviction(t *testing.T) {
	r := NewRollingMSE(2)
	if !math.IsInf(r.Value(), 1) {
		t.Fatal("empty rolling MSE should be +Inf")
	}
	r.Observe(1) // window [1]
	if !almostEqual(r.Value(), 1, 1e-12) {
		t.Fatalf("Value = %v", r.Value())
	}
	r.Observe(3) // window [1 9]
	if !almostEqual(r.Value(), 5, 1e-12) {
		t.Fatalf("Value = %v, want 5", r.Value())
	}
	r.Observe(5) // window [9 25], 1 evicted
	if !almostEqual(r.Value(), 17, 1e-12) {
		t.Fatalf("Value = %v, want 17", r.Value())
	}
	if r.Count() != 2 {
		t.Fatalf("Count = %d, want 2", r.Count())
	}
}

func TestRollingMSEReset(t *testing.T) {
	r := NewRollingMSE(4)
	r.Observe(2)
	r.Reset()
	if r.Count() != 0 || !math.IsInf(r.Value(), 1) {
		t.Fatal("Reset did not clear state")
	}
}

func TestRollingMSESizeClamp(t *testing.T) {
	r := NewRollingMSE(0)
	r.Observe(2)
	if !almostEqual(r.Value(), 4, 1e-12) {
		t.Fatalf("clamped window should work, got %v", r.Value())
	}
}

// Property: rolling MSE over a full window equals the batch MSE of the
// last `size` errors.
func TestRollingMSEMatchesBatchProperty(t *testing.T) {
	f := func(raw []float64, sizeRaw uint8) bool {
		size := int(sizeRaw%10) + 1
		errs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				continue
			}
			errs = append(errs, v)
		}
		if len(errs) < size {
			return true
		}
		r := NewRollingMSE(size)
		for _, e := range errs {
			r.Observe(e)
		}
		tail := errs[len(errs)-size:]
		zero := make([]float64, size)
		batch, err := MSE(tail, zero)
		if err != nil {
			return false
		}
		return almostEqual(r.Value(), batch, 1e-6*math.Max(1, batch))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
