package timeseries

import (
	"errors"
	"math"
)

// ACF returns the sample autocorrelation function at lags 0..maxLag.
// ACF[0] is always 1 for a non-constant series.
func ACF(s *Series, maxLag int) ([]float64, error) {
	n := s.Len()
	if n == 0 {
		return nil, errors.New("timeseries: ACF of empty series")
	}
	if maxLag >= n {
		maxLag = n - 1
	}
	mean := s.Mean()
	denom := 0.0
	for t := 0; t < n; t++ {
		d := s.At(t) - mean
		denom += d * d
	}
	out := make([]float64, maxLag+1)
	if denom == 0 {
		out[0] = 1
		return out, nil
	}
	for k := 0; k <= maxLag; k++ {
		num := 0.0
		for t := k; t < n; t++ {
			num += (s.At(t) - mean) * (s.At(t-k) - mean)
		}
		out[k] = num / denom
	}
	return out, nil
}

// PACF returns the sample partial autocorrelation function at lags
// 1..maxLag, computed via the Durbin–Levinson recursion. The returned
// slice has maxLag entries; index i holds the PACF at lag i+1.
func PACF(s *Series, maxLag int) ([]float64, error) {
	acf, err := ACF(s, maxLag)
	if err != nil {
		return nil, err
	}
	if maxLag >= len(acf) {
		maxLag = len(acf) - 1
	}
	if maxLag < 1 {
		return nil, errors.New("timeseries: PACF needs maxLag >= 1")
	}
	pacf := make([]float64, maxLag)
	phi := make([][]float64, maxLag+1)
	for i := range phi {
		phi[i] = make([]float64, maxLag+1)
	}
	phi[1][1] = acf[1]
	pacf[0] = acf[1]
	for k := 2; k <= maxLag; k++ {
		num := acf[k]
		den := 1.0
		for j := 1; j < k; j++ {
			num -= phi[k-1][j] * acf[k-j]
			den -= phi[k-1][j] * acf[j]
		}
		if den == 0 {
			phi[k][k] = 0
		} else {
			phi[k][k] = num / den
		}
		for j := 1; j < k; j++ {
			phi[k][j] = phi[k-1][j] - phi[k][k]*phi[k-1][k-j]
		}
		pacf[k-1] = phi[k][k]
	}
	return pacf, nil
}

// LjungBox returns the Ljung–Box Q statistic for residual whiteness over
// the first maxLag autocorrelations. Larger Q indicates more remaining
// autocorrelation (worse model fit).
func LjungBox(residuals *Series, maxLag int) (float64, error) {
	n := residuals.Len()
	acf, err := ACF(residuals, maxLag)
	if err != nil {
		return 0, err
	}
	q := 0.0
	for k := 1; k < len(acf); k++ {
		q += acf[k] * acf[k] / float64(n-k)
	}
	return float64(n) * (float64(n) + 2) * q, nil
}

// IsStationaryHint applies a cheap heuristic used in automated Box–Jenkins
// order selection: a series is "probably stationary" when its lag-1
// autocorrelation is comfortably below 1 and the ACF decays rather than
// lingering near 1 across the first several lags.
func IsStationaryHint(s *Series) bool {
	if s.Len() < 8 {
		return true
	}
	acf, err := ACF(s, 6)
	if err != nil {
		return true
	}
	// A unit-root series keeps the ACF near 1 for many lags.
	high := 0
	for k := 1; k < len(acf); k++ {
		if acf[k] > 0.85 {
			high++
		}
	}
	return high < 4 && !math.IsNaN(acf[1])
}
