package timeseries

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewCopiesInput(t *testing.T) {
	in := []float64{1, 2, 3}
	s := New(in)
	in[0] = 99
	if s.At(0) != 1 {
		t.Fatalf("New did not copy input: got %v", s.At(0))
	}
}

func TestFromFunc(t *testing.T) {
	s := FromFunc(5, func(t int) float64 { return float64(t * t) })
	want := []float64{0, 1, 4, 9, 16}
	for i, w := range want {
		if s.At(i) != w {
			t.Errorf("At(%d) = %v, want %v", i, s.At(i), w)
		}
	}
}

func TestLenAtLast(t *testing.T) {
	s := New([]float64{3, 1, 4})
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
	if s.Last() != 4 {
		t.Errorf("Last = %v, want 4", s.Last())
	}
}

func TestAppend(t *testing.T) {
	var s Series
	s.Append(1, 2)
	s.Append(3)
	if s.Len() != 3 || s.Last() != 3 {
		t.Fatalf("Append: len=%d last=%v", s.Len(), s.Last())
	}
}

func TestValuesReturnsCopy(t *testing.T) {
	s := New([]float64{1, 2})
	v := s.Values()
	v[0] = 42
	if s.At(0) != 1 {
		t.Fatal("Values did not return a copy")
	}
}

func TestSliceAndClone(t *testing.T) {
	s := New([]float64{0, 1, 2, 3, 4})
	sub := s.Slice(1, 4)
	if sub.Len() != 3 || sub.At(0) != 1 || sub.At(2) != 3 {
		t.Fatalf("Slice wrong: %v", sub.Values())
	}
	c := s.Clone()
	c.Append(9)
	if s.Len() != 5 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestSlicePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New([]float64{1}).Slice(0, 2)
}

func TestLag(t *testing.T) {
	s := New([]float64{10, 20, 30, 40})
	l, err := s.Lag(1)
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 3 || l.At(0) != 10 || l.At(2) != 30 {
		t.Fatalf("Lag(1) = %v", l.Values())
	}
	if _, err := s.Lag(-1); err == nil {
		t.Error("negative lag should error")
	}
	if _, err := s.Lag(5); err == nil {
		t.Error("excessive lag should error")
	}
}

func TestMeanVarianceStd(t *testing.T) {
	s := New([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEqual(s.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	if !almostEqual(s.Variance(), 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", s.Variance())
	}
	if !almostEqual(s.Std(), 2, 1e-12) {
		t.Errorf("Std = %v, want 2", s.Std())
	}
}

func TestEmptySeriesStats(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Variance() != 0 {
		t.Error("empty series should have zero mean/variance")
	}
	if !math.IsInf(s.Min(), 1) || !math.IsInf(s.Max(), -1) {
		t.Error("empty series Min/Max should be ±Inf")
	}
}

func TestMinMax(t *testing.T) {
	s := New([]float64{3, -1, 4, 1, 5})
	if s.Min() != -1 || s.Max() != 5 {
		t.Fatalf("Min=%v Max=%v", s.Min(), s.Max())
	}
}

func TestSplit(t *testing.T) {
	s := New([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	train, test := s.Split(0.5)
	if train.Len() != 5 || test.Len() != 5 {
		t.Fatalf("Split(0.5): %d/%d", train.Len(), test.Len())
	}
	train, test = s.Split(0.7)
	if train.Len() != 7 || test.Len() != 3 {
		t.Fatalf("Split(0.7): %d/%d", train.Len(), test.Len())
	}
	train, test = s.Split(-1)
	if train.Len() != 0 || test.Len() != 10 {
		t.Fatalf("Split clamp low: %d/%d", train.Len(), test.Len())
	}
	train, test = s.Split(2)
	if train.Len() != 10 || test.Len() != 0 {
		t.Fatalf("Split clamp high: %d/%d", train.Len(), test.Len())
	}
}

func TestNormalized(t *testing.T) {
	s := New([]float64{10, 20, 30})
	n, sc := s.Normalized()
	if n.At(0) != 0 || n.At(2) != 1 || !almostEqual(n.At(1), 0.5, 1e-12) {
		t.Fatalf("Normalized = %v", n.Values())
	}
	for i := 0; i < s.Len(); i++ {
		if !almostEqual(sc.Invert(n.At(i)), s.At(i), 1e-12) {
			t.Errorf("Invert(Normalized) mismatch at %d", i)
		}
		if !almostEqual(sc.Apply(s.At(i)), n.At(i), 1e-12) {
			t.Errorf("Apply mismatch at %d", i)
		}
	}
}

func TestNormalizedConstantSeries(t *testing.T) {
	s := New([]float64{5, 5, 5})
	n, sc := s.Normalized()
	for i := 0; i < n.Len(); i++ {
		if n.At(i) != 0 {
			t.Fatalf("constant series should normalize to 0, got %v", n.At(i))
		}
		if sc.Invert(n.At(i)) != 5 {
			t.Fatalf("Invert should restore constant 5, got %v", sc.Invert(n.At(i)))
		}
	}
}

func TestScaleZeroFactorApply(t *testing.T) {
	sc := Scale{Offset: 3, Factor: 0}
	if sc.Apply(10) != 0 {
		t.Error("zero-factor Apply should return 0")
	}
}

// Property: normalization then inversion is the identity (up to float error).
func TestNormalizeRoundTripProperty(t *testing.T) {
	f := func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				continue
			}
			vals = append(vals, v)
		}
		if len(vals) == 0 {
			return true
		}
		s := New(vals)
		n, sc := s.Normalized()
		span := s.Max() - s.Min()
		tol := 1e-9 * math.Max(1, span)
		for i := 0; i < s.Len(); i++ {
			if !almostEqual(sc.Invert(n.At(i)), s.At(i), tol) {
				return false
			}
			if n.At(i) < -1e-9 || n.At(i) > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: mean of normalized series lies in [0, 1].
func TestNormalizedRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := int(seed%50+50) % 100
		if n < 2 {
			n = 2
		}
		s := FromFunc(n, func(t int) float64 {
			return math.Sin(float64(t)*0.3) * float64(seed%7+1)
		})
		norm, _ := s.Normalized()
		m := norm.Mean()
		return m >= 0 && m <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
