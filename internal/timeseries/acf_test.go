package timeseries

import (
	"math"
	"math/rand"
	"testing"
)

func ar1Series(n int, phi float64, seed int64) *Series {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, n)
	for t := 1; t < n; t++ {
		data[t] = phi*data[t-1] + rng.NormFloat64()
	}
	return New(data)
}

func TestACFLagZeroIsOne(t *testing.T) {
	s := ar1Series(500, 0.6, 1)
	acf, err := ACF(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(acf[0], 1, 1e-12) {
		t.Fatalf("ACF[0] = %v, want 1", acf[0])
	}
}

func TestACFEmpty(t *testing.T) {
	if _, err := ACF(New(nil), 3); err == nil {
		t.Fatal("expected error on empty series")
	}
}

func TestACFConstantSeries(t *testing.T) {
	acf, err := ACF(New([]float64{4, 4, 4, 4}), 2)
	if err != nil {
		t.Fatal(err)
	}
	if acf[0] != 1 || acf[1] != 0 {
		t.Fatalf("constant series ACF = %v", acf)
	}
}

func TestACFOfAR1MatchesTheory(t *testing.T) {
	// For an AR(1) with coefficient phi, ACF(k) ≈ phi^k.
	phi := 0.7
	s := ar1Series(20000, phi, 42)
	acf, err := ACF(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 3; k++ {
		want := math.Pow(phi, float64(k))
		if math.Abs(acf[k]-want) > 0.05 {
			t.Errorf("ACF[%d] = %.3f, want ≈ %.3f", k, acf[k], want)
		}
	}
}

func TestACFMaxLagClamped(t *testing.T) {
	s := New([]float64{1, 2, 3})
	acf, err := ACF(s, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(acf) != 3 {
		t.Fatalf("len(acf) = %d, want 3 (clamped)", len(acf))
	}
}

func TestPACFOfAR1CutsOffAfterLag1(t *testing.T) {
	phi := 0.7
	s := ar1Series(20000, phi, 7)
	pacf, err := PACF(s, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pacf[0]-phi) > 0.05 {
		t.Errorf("PACF[1] = %.3f, want ≈ %.3f", pacf[0], phi)
	}
	for k := 1; k < len(pacf); k++ {
		if math.Abs(pacf[k]) > 0.06 {
			t.Errorf("PACF at lag %d = %.3f, want ≈ 0 for AR(1)", k+1, pacf[k])
		}
	}
}

func TestPACFNeedsLag(t *testing.T) {
	if _, err := PACF(New([]float64{1, 2, 3}), 0); err == nil {
		t.Fatal("expected error for maxLag < 1")
	}
}

func TestLjungBoxWhiteNoiseSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	wn := FromFunc(2000, func(int) float64 { return rng.NormFloat64() })
	q, err := LjungBox(wn, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Chi-squared(10) 99th percentile ≈ 23.2; white noise should be well
	// under with high probability at this seed.
	if q > 30 {
		t.Errorf("Ljung-Box Q = %.2f for white noise, suspiciously large", q)
	}
	// An AR(1) should produce a much larger Q.
	qa, err := LjungBox(ar1Series(2000, 0.8, 3), 10)
	if err != nil {
		t.Fatal(err)
	}
	if qa < 10*q+100 {
		t.Errorf("Ljung-Box should flag AR(1): wn=%.2f ar=%.2f", q, qa)
	}
}

func TestIsStationaryHint(t *testing.T) {
	// Random walk: not stationary.
	rng := rand.New(rand.NewSource(11))
	rw := make([]float64, 800)
	for t := 1; t < len(rw); t++ {
		rw[t] = rw[t-1] + rng.NormFloat64()
	}
	if IsStationaryHint(New(rw)) {
		t.Error("random walk flagged stationary")
	}
	// White noise: stationary.
	if !IsStationaryHint(FromFunc(800, func(int) float64 { return rng.NormFloat64() })) {
		t.Error("white noise flagged non-stationary")
	}
	// Very short series defaults to stationary.
	if !IsStationaryHint(New([]float64{1, 2})) {
		t.Error("short series should default to stationary")
	}
}
