package traces

import "testing"

func TestLiteGenDeterministic(t *testing.T) {
	a := NewLiteGen(42)
	b := NewLiteGen(42)
	for i := 0; i < 500; i++ {
		if pa, pb := a.Next(), b.Next(); pa != pb {
			t.Fatalf("step %d: same seed diverged: %+v vs %+v", i, pa, pb)
		}
	}
}

func TestLiteGenSkipMatchesReplay(t *testing.T) {
	replay := NewLiteGen(7)
	for i := 0; i < 123; i++ {
		replay.Next()
	}
	skipped := NewLiteGen(7)
	skipped.Skip(123)
	if skipped.Pos() != 123 {
		t.Fatalf("Pos after Skip(123) = %d", skipped.Pos())
	}
	for i := 0; i < 50; i++ {
		if pr, ps := replay.Next(), skipped.Next(); pr != ps {
			t.Fatalf("step %d after skip diverged: %+v vs %+v", i, pr, ps)
		}
	}
}

func TestLiteGenNormalizedAndVarying(t *testing.T) {
	g := NewLiteGen(3)
	other := NewLiteGen(4)
	var crossedHot, differsAcrossSeeds bool
	prev := Profile{}
	var changes int
	for i := 0; i < 3*SamplesPerDay; i++ {
		p := g.At(int64(i))
		for _, v := range p.Components() {
			if v < 0 || v > 1 {
				t.Fatalf("step %d: component %v out of [0,1] in %+v", i, v, p)
			}
		}
		if p.Max() > 0.9 {
			crossedHot = true
		}
		if p != other.At(int64(i)) {
			differsAcrossSeeds = true
		}
		if i > 0 && p != prev {
			changes++
		}
		prev = p
	}
	if !crossedHot {
		t.Fatal("lite traces never cross the 0.9 hot region — alerts would be untestable at scale")
	}
	if !differsAcrossSeeds {
		t.Fatal("distinct seeds produced identical traces")
	}
	if changes < SamplesPerDay {
		t.Fatalf("trace nearly constant: only %d changes over 3 days", changes)
	}
}
