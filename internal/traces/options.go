package traces

import (
	"fmt"
	"strings"
)

// Kind names a trace-generator family. The zero value is Diurnal, the
// figure-faithful materialized generator the paper experiments run on.
type Kind int

const (
	// Diurnal is the materialized WorkloadGen: diurnal CPU, bursty IO,
	// weekly traffic with AR noise (Figs. 3–5). The default.
	Diurnal Kind = iota
	// Lite is the counter-based hashed generator (O(1) state per VM) for
	// hyperscale runs. NOT sample-compatible with Diurnal.
	Lite
	// Surge is the regime-switching surge generator: a seeded Markov chain
	// over calm / training-job-wave / flash-crowd / rack-burst regimes
	// drives surge components on top of the diurnal baseline. Rack-burst
	// windows hit a correlated subset of racks.
	Surge
	// SurgeLite is the closed-form surge variant: the LiteGen baseline plus
	// hash-drawn per-window regimes, O(1) state and O(1) Skip, for
	// hyperscale surge runs. NOT sample-compatible with Surge.
	SurgeLite
)

// String returns the canonical kind name accepted by ParseKind.
func (k Kind) String() string {
	switch k {
	case Diurnal:
		return "diurnal"
	case Lite:
		return "lite"
	case Surge:
		return "surge"
	case SurgeLite:
		return "surge-lite"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind resolves a kind name; "" means Diurnal.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "diurnal", "default":
		return Diurnal, nil
	case "lite":
		return Lite, nil
	case "surge":
		return Surge, nil
	case "surge-lite", "surgelite", "lite-surge":
		return SurgeLite, nil
	default:
		return 0, fmt.Errorf("traces: unknown kind %q (want diurnal, lite, surge, or surge-lite)", s)
	}
}

// Kinds returns every built-in kind in grid order.
func Kinds() []Kind { return []Kind{Diurnal, Lite, Surge, SurgeLite} }

// SurgeParams tunes the surge kinds' regime process and burst shapes.
// The zero value means "use the defaults". Weights are relative regime
// propensities: when all three are zero the default mix applies, and
// setting only one weight yields a single-regime trace (the basis of the
// per-regime evaluation grid).
type SurgeParams struct {
	// MeanDwell is the mean regime dwell time in samples (default 45).
	MeanDwell int
	// TrainWeight, FlashWeight, BurstWeight are the relative propensities
	// of entering each surge regime from calm; calm keeps weight 1. When
	// all three are zero the defaults apply (0.30, 0.20, 0.30). To run a
	// single-regime trace, set only that regime's weight.
	TrainWeight, FlashWeight, BurstWeight float64
	// RackFraction is the fraction of racks a rack-burst window hits
	// (default 0.4). Membership is a seeded hash per (episode, rack), so
	// the same racks surge together across every VM of the cluster.
	RackFraction float64
	// Intensity scales every surge component's amplitude (default 1).
	Intensity float64
}

// WithDefaults returns the params with zero fields replaced by their
// defaults (45-step dwell, the default regime mix).
func (p SurgeParams) WithDefaults() SurgeParams {
	if p.MeanDwell == 0 {
		p.MeanDwell = 45
	}
	if p.TrainWeight == 0 && p.FlashWeight == 0 && p.BurstWeight == 0 {
		p.TrainWeight, p.FlashWeight, p.BurstWeight = 0.30, 0.20, 0.30
	}
	if p.RackFraction == 0 {
		p.RackFraction = 0.4
	}
	if p.Intensity == 0 {
		p.Intensity = 1
	}
	return p
}

// Validate reports whether the params are usable: negative fields are
// errors, zero fields mean defaults.
func (p SurgeParams) Validate() error {
	if p.MeanDwell < 0 {
		return fmt.Errorf("traces: MeanDwell must be >= 0 (0 = default), got %d", p.MeanDwell)
	}
	for _, w := range []struct {
		name string
		v    float64
	}{{"TrainWeight", p.TrainWeight}, {"FlashWeight", p.FlashWeight}, {"BurstWeight", p.BurstWeight}} {
		if w.v < 0 {
			return fmt.Errorf("traces: %s must be >= 0, got %v", w.name, w.v)
		}
	}
	if p.RackFraction < 0 || p.RackFraction > 1 {
		return fmt.Errorf("traces: RackFraction must be in [0, 1] (0 = default), got %v", p.RackFraction)
	}
	if p.Intensity < 0 {
		return fmt.Errorf("traces: Intensity must be >= 0 (0 = default), got %v", p.Intensity)
	}
	return nil
}

// Options selects and seeds a trace-generator family — the single
// construction surface behind New, following the library's option
// convention: zero values mean defaults, negative values are Validate
// errors, and WithDefaults fills the blanks.
type Options struct {
	// Kind picks the generator family. Default Diurnal.
	Kind Kind
	// Seed is the cluster-level seed. Per-VM streams derive from it
	// (Seed + vmID for the per-VM processes; the surge regime schedule
	// hashes the cluster seed alone so bursts correlate across VMs).
	Seed int64
	// Hours is the horizon of the materialized kinds before wrap-around
	// (default 24). The counter-based kinds never wrap and ignore it.
	Hours int
	// Surge tunes the surge kinds' regime process; ignored by the others.
	Surge SurgeParams
}

// Validate reports whether the options are usable: unknown kinds and
// negative fields are errors, zero fields mean defaults.
func (o Options) Validate() error {
	switch o.Kind {
	case Diurnal, Lite, Surge, SurgeLite:
	default:
		return fmt.Errorf("traces: unknown kind %d", int(o.Kind))
	}
	if o.Hours < 0 {
		return fmt.Errorf("traces: Hours must be >= 0 (0 = default), got %d", o.Hours)
	}
	return o.Surge.Validate()
}

// WithDefaults returns the options with zero fields replaced by their
// defaults (24-hour horizon, the default surge regime mix).
func (o Options) WithDefaults() Options {
	if o.Hours == 0 {
		o.Hours = 24
	}
	o.Surge = o.Surge.WithDefaults()
	return o
}

// Generator is a cluster-level trace-generator: one per runtime, handing
// out per-VM profile Sources. Construction happens once (the surge kinds
// precompute the shared regime schedule there); Source is cheap.
type Generator interface {
	// Kind reports the family the generator was built from.
	Kind() Kind
	// Source returns VM vmID's profile stream. rack is the VM's rack
	// index, which drives cross-rack burst correlation in the surge kinds
	// and is ignored by the others. Sources are independent: each may be
	// advanced (and Skip-replayed) on its own goroutine.
	Source(vmID int, rack int) Source
}

// New builds a Generator from the options — the unified constructor that
// subsumed the positional NewWorkloadGen / NewLiteGen call sites.
func New(o Options) (Generator, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	o = o.WithDefaults()
	switch o.Kind {
	case Lite:
		return liteFactory{seed: o.Seed}, nil
	case Surge:
		return newSurgeFactory(o), nil
	case SurgeLite:
		return newSurgeLiteFactory(o), nil
	default:
		return diurnalFactory{hours: o.Hours, seed: o.Seed}, nil
	}
}

// diurnalFactory hands out the materialized figure-faithful generators,
// seeded Seed+vmID exactly as the pre-Options call sites did.
type diurnalFactory struct {
	hours int
	seed  int64
}

func (f diurnalFactory) Kind() Kind { return Diurnal }

func (f diurnalFactory) Source(vmID, _ int) Source {
	return NewWorkloadGen(f.hours, f.seed+int64(vmID))
}

// liteFactory hands out the counter-based hashed generators.
type liteFactory struct {
	seed int64
}

func (f liteFactory) Kind() Kind { return Lite }

func (f liteFactory) Source(vmID, _ int) Source {
	g := NewLiteGen(f.seed + int64(vmID))
	return &g
}
