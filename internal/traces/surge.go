package traces

import (
	"math"
	"math/rand"
)

// The surge plane: regime-switching workloads for the burst-aware
// early-warning evaluation. A seeded Markov chain over four regimes —
// calm, training-job wave, flash crowd, correlated rack burst — is
// materialized once per Generator as a shared schedule, so every VM of a
// cluster sees the same regime timeline (that is what makes the bursts
// correlated: a flash crowd is cluster-wide, a rack burst hits a hashed
// subset of racks for the whole episode). Per-VM noise rides on splitmix
// hashes of (seed, vm, t), so a Source's output is a pure function of its
// construction parameters and position — Skip replays bit-identically.
//
// SurgeLite is the closed-form variant: the same regime vocabulary drawn
// per fixed-length window from a hash instead of a materialized Markov
// walk, over the LiteGen baseline. State stays O(1) per VM and Skip is
// O(1), the hyperscale discipline of lite.go.

// Regime is one state of the surge process.
type Regime uint8

const (
	// RegimeCalm is the baseline regime: the underlying diurnal (or lite)
	// process, unmodified.
	RegimeCalm Regime = iota
	// RegimeTrain is a training-job wave: a cluster-wide sawtooth plateau
	// on CPU/memory (epoch waves of a large distributed training job).
	RegimeTrain
	// RegimeFlash is a flash crowd: a sharp cluster-wide traffic spike
	// with fast onset and slower decay.
	RegimeFlash
	// RegimeBurst is a correlated multi-rack burst: a hashed subset of
	// racks saturates CPU/IO/traffic together for the episode.
	RegimeBurst
)

// String names the regime for traces and reports.
func (r Regime) String() string {
	switch r {
	case RegimeCalm:
		return "calm"
	case RegimeTrain:
		return "train-wave"
	case RegimeFlash:
		return "flash-crowd"
	case RegimeBurst:
		return "rack-burst"
	default:
		return "unknown"
	}
}

// regimeSchedule is the materialized Markov walk shared by every Source of
// one Surge generator: the regime, the sample offset into the current
// episode, and the episode ordinal (which keys rack-burst membership) at
// every step of the horizon. Sources wrap at the end, like WorkloadGen.
type regimeSchedule struct {
	regime  []Regime
	phase   []uint16 // samples since the episode began
	episode []uint16 // episode ordinal, keys burst membership hashing
	seed    int64
	params  SurgeParams
}

// buildSchedule walks the regime Markov chain over n samples. Episode
// dwells are geometric around MeanDwell (calm dwells are twice as long, so
// roughly half the timeline stays calm under the default mix) and the next
// regime is drawn from the weight mix; calm always separates two surge
// episodes, matching how production surges arrive as distinct events.
func buildSchedule(n int, seed int64, p SurgeParams) *regimeSchedule {
	s := &regimeSchedule{
		regime:  make([]Regime, n),
		phase:   make([]uint16, n),
		episode: make([]uint16, n),
		seed:    seed,
		params:  p,
	}
	rng := rand.New(rand.NewSource(mixSeed(seed)))
	total := p.TrainWeight + p.FlashWeight + p.BurstWeight
	cur := RegimeCalm
	episode := uint16(0)
	t := 0
	for t < n {
		mean := float64(p.MeanDwell)
		if cur == RegimeCalm {
			mean *= 2
		}
		dwell := 1 + int(rng.ExpFloat64()*mean)
		if dwell > n-t {
			dwell = n - t
		}
		for i := 0; i < dwell; i++ {
			s.regime[t] = cur
			s.phase[t] = uint16(i)
			s.episode[t] = episode
			t++
		}
		if cur != RegimeCalm || total == 0 {
			cur = RegimeCalm
		} else {
			u := rng.Float64() * total
			switch {
			case u < p.TrainWeight:
				cur = RegimeTrain
			case u < p.TrainWeight+p.FlashWeight:
				cur = RegimeFlash
			default:
				cur = RegimeBurst
			}
			episode++
		}
	}
	return s
}

// mixSeed decorrelates the schedule's rng stream from the per-VM
// generator seeds (which are Seed + vmID).
func mixSeed(seed int64) int64 {
	return int64(mix64(uint64(seed) ^ 0x5e1f97a9b4c3d2e1))
}

// burstMember reports whether a rack participates in a rack-burst
// episode: a seeded hash per (episode, rack) under RackFraction, the same
// answer for every VM that asks.
func burstMember(seed int64, episode uint16, rack int, fraction float64) bool {
	h := mix64(uint64(seed)*0x9e3779b97f4a7c15 ^ uint64(episode)<<32 ^ uint64(uint32(rack)))
	return u01(h) < fraction
}

// trainWave is the training-job wave shape at phase samples into the
// episode: epoch-length sawtooth ramps under a fast-onset plateau
// envelope, in [0, 1].
func trainWave(phase int) float64 {
	const epoch = 16 // samples per training epoch wave
	ramp := float64(phase%epoch) / epoch
	onset := 1 - math.Exp(-float64(phase)/4)
	return onset * (0.65 + 0.35*ramp)
}

// flashShape is the flash-crowd shape: near-instant rise, exponential
// decay with a long-enough tail that the early-warning window matters.
func flashShape(phase int) float64 {
	onset := 1 - math.Exp(-float64(phase)/2)
	return onset * math.Exp(-float64(phase)/60)
}

// burstShape is the rack-burst shape: fast rise to a sustained plateau
// with a slow droop.
func burstShape(phase int) float64 {
	onset := 1 - math.Exp(-float64(phase)/3)
	return onset * (0.85 + 0.15*math.Exp(-float64(phase)/90))
}

// applySurge overlays the regime's surge component on a baseline profile.
// noise in [0,1) decorrelates VM amplitudes within an episode without
// breaking their synchrony.
func applySurge(p Profile, reg Regime, phase int, member bool, intensity, noise float64) Profile {
	amp := intensity * (0.85 + 0.3*noise)
	switch reg {
	case RegimeTrain:
		w := trainWave(phase) * amp
		p.CPU = clamp(p.CPU+0.55*w, 0, 1)
		p.Mem = clamp(p.Mem+0.45*w, 0, 1)
		p.IO = clamp(p.IO+0.20*w, 0, 1)
		p.TRF = clamp(p.TRF+0.25*w, 0, 1)
	case RegimeFlash:
		f := flashShape(phase) * amp
		p.TRF = clamp(p.TRF+0.60*f, 0, 1)
		p.CPU = clamp(p.CPU+0.35*f, 0, 1)
	case RegimeBurst:
		if !member {
			break
		}
		b := burstShape(phase) * amp
		p.CPU = clamp(p.CPU+0.50*b, 0, 1)
		p.IO = clamp(p.IO+0.45*b, 0, 1)
		p.TRF = clamp(p.TRF+0.40*b, 0, 1)
	}
	return p
}

// surgeFactory is the Surge generator: a shared regime schedule over the
// materialized diurnal baseline.
type surgeFactory struct {
	opts     Options
	schedule *regimeSchedule
}

func newSurgeFactory(o Options) *surgeFactory {
	n := o.Hours * SamplesPerHour
	return &surgeFactory{opts: o, schedule: buildSchedule(n, o.Seed, o.Surge)}
}

func (f *surgeFactory) Kind() Kind { return Surge }

func (f *surgeFactory) Source(vmID, rack int) Source {
	return &SurgeGen{
		base:     NewWorkloadGen(f.opts.Hours, f.opts.Seed+int64(vmID)),
		schedule: f.schedule,
		vmSeed:   f.opts.Seed + int64(vmID),
		rack:     rack,
	}
}

// SurgeGen is one VM's regime-switching profile stream: the diurnal
// baseline plus the shared schedule's surge component. Deterministic
// given (Options, vmID, rack); Skip replays bit-identically.
type SurgeGen struct {
	base     *WorkloadGen
	schedule *regimeSchedule
	vmSeed   int64
	rack     int
	t        int
}

// Next returns the next profile and advances the stream.
func (g *SurgeGen) Next() Profile {
	p := g.base.Next()
	s := g.schedule
	i := g.t % len(s.regime)
	g.t++
	reg := s.regime[i]
	if reg == RegimeCalm {
		return p
	}
	member := reg != RegimeBurst ||
		burstMember(s.seed, s.episode[i], g.rack, s.params.RackFraction)
	noise := u01(mix64(uint64(g.vmSeed)*0x2545f4914f6cdd1d ^ uint64(s.episode[i])))
	return applySurge(p, reg, int(s.phase[i]), member, s.params.Intensity, noise)
}

// Pos reports how many profiles Next has produced.
func (g *SurgeGen) Pos() int { return g.t }

// Skip advances the stream by n profiles.
func (g *SurgeGen) Skip(n int) {
	g.base.Skip(n)
	g.t += n
}

// RegimeReporter is satisfied by generators that expose their regime
// timeline (the surge kinds): the ground truth evaluation harnesses label
// surge windows with. Diurnal and Lite generators do not implement it.
type RegimeReporter interface {
	// RegimeAt reports the cluster-wide regime at absolute step t.
	RegimeAt(t int) Regime
}

// RegimeAt reports the shared schedule's regime at absolute step t.
func (f *surgeFactory) RegimeAt(t int) Regime {
	return f.schedule.regime[t%len(f.schedule.regime)]
}

// surgeLiteFactory is the SurgeLite generator: hash-drawn fixed-window
// regimes over the LiteGen baseline. No materialized state beyond the
// options themselves.
type surgeLiteFactory struct {
	opts Options
}

func newSurgeLiteFactory(o Options) surgeLiteFactory { return surgeLiteFactory{opts: o} }

func (f surgeLiteFactory) Kind() Kind { return SurgeLite }

// RegimeAt reports the hash-drawn regime of the window containing step t.
func (f surgeLiteFactory) RegimeAt(t int) Regime {
	p := f.opts.Surge
	return liteRegimeAt(f.opts.Seed, int64(t)/int64(p.MeanDwell), p)
}

func (f surgeLiteFactory) Source(vmID, rack int) Source {
	return &SurgeLiteGen{
		base:   NewLiteGen(f.opts.Seed + int64(vmID)),
		seed:   f.opts.Seed,
		vmSeed: f.opts.Seed + int64(vmID),
		rack:   rack,
		params: f.opts.Surge,
	}
}

// liteRegimeAt draws the regime of window w from the weight mix — the
// closed-form stand-in for the Markov walk. Windows are MeanDwell samples
// long; roughly half come up calm under the default mix (the draw is
// against calm's implicit weight 1), so the timeline alternates episodes
// and quiet the way the materialized schedule does, without sequential
// state.
func liteRegimeAt(seed int64, w int64, p SurgeParams) Regime {
	total := p.TrainWeight + p.FlashWeight + p.BurstWeight
	if total == 0 {
		return RegimeCalm
	}
	u := u01(mix64(uint64(seed)^uint64(w)*0xd6e8feb86659fd93)) * (1 + total)
	switch {
	case u < 1:
		return RegimeCalm
	case u < 1+p.TrainWeight:
		return RegimeTrain
	case u < 1+p.TrainWeight+p.FlashWeight:
		return RegimeFlash
	default:
		return RegimeBurst
	}
}

// SurgeLiteGen is the O(1)-state surge stream: profile at step t is a pure
// function of (seed, vmID, rack, t), so Skip is a counter bump.
type SurgeLiteGen struct {
	base   LiteGen
	seed   int64
	vmSeed int64
	rack   int
	params SurgeParams
	t      int64
}

// At returns the profile at absolute step t without advancing the stream.
func (g *SurgeLiteGen) At(t int64) Profile {
	p := g.base.At(t)
	dwell := int64(g.params.MeanDwell)
	w := t / dwell
	reg := liteRegimeAt(g.seed, w, g.params)
	if reg == RegimeCalm {
		return p
	}
	member := reg != RegimeBurst ||
		burstMember(g.seed, uint16(uint64(w)), g.rack, g.params.RackFraction)
	noise := u01(mix64(uint64(g.vmSeed)*0x2545f4914f6cdd1d ^ uint64(w)))
	return applySurge(p, reg, int(t%dwell), member, g.params.Intensity, noise)
}

// Next returns the next profile and advances the counter.
func (g *SurgeLiteGen) Next() Profile {
	p := g.At(g.t)
	g.t++
	return p
}

// Pos reports how many profiles Next has produced.
func (g *SurgeLiteGen) Pos() int { return int(g.t) }

// Skip advances the stream by n profiles in O(1).
func (g *SurgeLiteGen) Skip(n int) { g.t += int64(n) }

var (
	_ Source         = (*SurgeGen)(nil)
	_ Source         = (*SurgeLiteGen)(nil)
	_ Generator      = (*surgeFactory)(nil)
	_ Generator      = surgeLiteFactory{}
	_ RegimeReporter = (*surgeFactory)(nil)
	_ RegimeReporter = surgeLiteFactory{}
	_ Generator      = diurnalFactory{}
	_ Generator      = liteFactory{}
)
