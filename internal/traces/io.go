package traces

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"sheriff/internal/timeseries"
)

// WriteCSV writes a series as "index,value" rows with a header. This is
// the interchange format for feeding real data-center traces (the role
// the ZopleCloud data plays in the paper) into the prediction pipeline.
func WriteCSV(w io.Writer, name string, s *timeseries.Series) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "t,%s\n", sanitizeHeader(name)); err != nil {
		return err
	}
	for t := 0; t < s.Len(); t++ {
		if _, err := fmt.Fprintf(bw, "%d,%g\n", t, s.At(t)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV reads a series from "index,value" rows (header optional,
// detected by a non-numeric second field on the first row). Blank lines
// and lines starting with '#' are skipped. Values must appear in index
// order; the index column itself is ignored beyond validation.
func ReadCSV(r io.Reader) (*timeseries.Series, error) {
	sc := bufio.NewScanner(r)
	var data []float64
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) != 2 {
			return nil, fmt.Errorf("traces: line %d: want 2 fields, got %d", line, len(fields))
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(fields[1]), 64)
		if err != nil {
			if len(data) == 0 {
				continue // header row
			}
			return nil, fmt.Errorf("traces: line %d: %w", line, err)
		}
		data = append(data, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("traces: no data rows")
	}
	return timeseries.New(data), nil
}

func sanitizeHeader(name string) string {
	name = strings.ReplaceAll(name, ",", "_")
	name = strings.ReplaceAll(name, "\n", "_")
	if name == "" {
		name = "value"
	}
	return name
}

// WriteProfileCSV writes a stream of workload profiles as
// "t,cpu,mem,io,trf" rows.
func WriteProfileCSV(w io.Writer, profiles []Profile) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "t,cpu,mem,io,trf"); err != nil {
		return err
	}
	for t, p := range profiles {
		if _, err := fmt.Fprintf(bw, "%d,%g,%g,%g,%g\n", t, p.CPU, p.Mem, p.IO, p.TRF); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadProfileCSV reads profiles written by WriteProfileCSV.
func ReadProfileCSV(r io.Reader) ([]Profile, error) {
	sc := bufio.NewScanner(r)
	var out []Profile
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) != 5 {
			return nil, fmt.Errorf("traces: line %d: want 5 fields, got %d", line, len(fields))
		}
		var vals [4]float64
		ok := true
		for i := 0; i < 4; i++ {
			v, err := strconv.ParseFloat(strings.TrimSpace(fields[i+1]), 64)
			if err != nil {
				if len(out) == 0 {
					ok = false // header row
					break
				}
				return nil, fmt.Errorf("traces: line %d: %w", line, err)
			}
			vals[i] = v
		}
		if !ok {
			continue
		}
		out = append(out, Profile{CPU: vals[0], Mem: vals[1], IO: vals[2], TRF: vals[3]})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("traces: no data rows")
	}
	return out, nil
}
