package traces

import "math"

// Source is the profile stream a runtime VM consumes: WorkloadGen (the
// materialized, figure-faithful generator) and LiteGen (the O(1)-state
// hyperscale generator) both satisfy it.
type Source interface {
	Next() Profile
	// Pos reports how many profiles Next has produced; a fresh source with
	// the same construction parameters advanced by Skip(Pos()) continues
	// bit-identically.
	Pos() int
	// Skip advances the source by n profiles, discarding them.
	Skip(n int)
}

var (
	_ Source = (*WorkloadGen)(nil)
	_ Source = (*LiteGen)(nil)
)

// LiteGen is a counter-based workload source for hyperscale runs: the
// profile at step t is a pure function of (seed, t), so per-VM state is
// two words instead of WorkloadGen's ~35 KB of materialized series, and
// Skip is O(1) instead of a replay. The shapes mirror WorkloadGen —
// diurnal CPU with decaying-window spikes, inertia-free memory tracking
// CPU, bursty IO, daily+weekly traffic — but the two generators are NOT
// sample-compatible; LiteGen trades the AR noise processes for hash noise
// to stay random-access.
type LiteGen struct {
	seed int64
	t    int64

	// Per-VM constants derived from the seed at construction (kept here so
	// At stays a pure function of t without re-hashing the seed).
	phase   float64 // diurnal phase offset in samples
	cpuBase float64
	trfBase float64
}

// NewLiteGen builds a lite workload source. Like NewWorkloadGen, distinct
// seeds give decorrelated VMs.
func NewLiteGen(seed int64) LiteGen {
	h := mix64(uint64(seed))
	return LiteGen{
		seed:    seed,
		phase:   u01(h) * SamplesPerDay,
		cpuBase: 0.25 + 0.2*u01(mix64(h+1)),
		trfBase: 0.2 + 0.2*u01(mix64(h+2)),
	}
}

// mix64 is the splitmix64 finalizer: a cheap, statistically strong
// avalanche of a 64-bit counter.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// u01 maps a hash to [0,1).
func u01(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// At returns the profile at absolute step t without advancing the source.
func (g *LiteGen) At(t int64) Profile {
	day := 2 * math.Pi * (float64(t) + g.phase) / SamplesPerDay
	sinDay := math.Sin(day)
	h := mix64(uint64(g.seed)*0x2545f4914f6cdd1d ^ uint64(t))
	n1 := u01(h)
	n2 := u01(mix64(h + 1))
	n3 := u01(mix64(h + 2))

	cpu := g.cpuBase + 0.22*sinDay + 0.1*(n1-0.5)
	// Spikes are keyed to a coarse window of t so they persist for a few
	// samples, like the decaying spikes of the CPU generator.
	if u01(mix64(uint64(g.seed)^uint64(t>>3)+0x5bd1e995)) < 0.02 {
		cpu += 0.35 + 0.15*n1
	}
	cpu = clamp(cpu, 0, 1)
	mem := clamp(0.3+0.5*cpu+0.06*(n2-0.5), 0, 1)
	io := 0.25 + 0.12*math.Cos(day)
	if n3 < 0.05 {
		io += 0.5 + 0.4*n2 // heavy-tailed burst window
	}
	io = clamp(io+0.08*(n3-0.5), 0, 1)
	week := math.Sin(day / 7)
	trf := clamp(g.trfBase+0.2*sinDay+0.12*week+0.08*(n1-0.5), 0, 1)
	return Profile{CPU: cpu, Mem: mem, IO: io, TRF: trf}
}

// Next returns the next profile and advances the counter.
func (g *LiteGen) Next() Profile {
	p := g.At(g.t)
	g.t++
	return p
}

// Pos reports how many profiles Next has produced.
func (g *LiteGen) Pos() int { return int(g.t) }

// Skip advances the source by n profiles in O(1).
func (g *LiteGen) Skip(n int) { g.t += int64(n) }
