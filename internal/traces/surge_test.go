package traces

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestParseKindRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", k, err)
		}
		if got != k {
			t.Fatalf("ParseKind(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if k, err := ParseKind(""); err != nil || k != Diurnal {
		t.Fatalf("ParseKind(\"\") = %v, %v; want Diurnal", k, err)
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Fatal("ParseKind accepted an unknown kind")
	}
}

func TestOptionsValidate(t *testing.T) {
	bad := []Options{
		{Kind: Kind(99)},
		{Hours: -1},
		{Surge: SurgeParams{MeanDwell: -5}},
		{Surge: SurgeParams{TrainWeight: -0.1}},
		{Surge: SurgeParams{RackFraction: 1.5}},
		{Surge: SurgeParams{Intensity: -1}},
	}
	for _, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", o)
		}
	}
	if err := (Options{}).Validate(); err != nil {
		t.Fatalf("zero Options failed Validate: %v", err)
	}
	d := Options{}.WithDefaults()
	if d.Hours != 24 || d.Surge.MeanDwell != 45 || d.Surge.Intensity != 1 {
		t.Fatalf("WithDefaults = %+v", d)
	}
	kept := Options{Hours: 48, Surge: SurgeParams{MeanDwell: 10}}.WithDefaults()
	if kept.Hours != 48 || kept.Surge.MeanDwell != 10 {
		t.Fatalf("WithDefaults overwrote set fields: %+v", kept)
	}
}

// TestNewMatchesLegacyConstructors pins the API redesign's bit-exactness
// contract: the Diurnal and Lite kinds built through New produce exactly
// the streams the positional constructors did, so every pre-Options
// scenario stays bit-identical.
func TestNewMatchesLegacyConstructors(t *testing.T) {
	const seed, vm = 7, 13
	gen, err := New(Options{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	want := NewWorkloadGen(24, seed+vm)
	got := gen.Source(vm, 0)
	for i := 0; i < 200; i++ {
		if g, w := got.Next(), want.Next(); g != w {
			t.Fatalf("diurnal step %d: %+v != %+v", i, g, w)
		}
	}

	lgen, err := New(Options{Kind: Lite, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	lw := NewLiteGen(seed + vm)
	lg := lgen.Source(vm, 0)
	for i := 0; i < 200; i++ {
		if g, w := lg.Next(), lw.Next(); g != w {
			t.Fatalf("lite step %d: %+v != %+v", i, g, w)
		}
	}
}

// TestSurgeDeterminism: same options give identical streams, different
// seeds give different ones, and Skip(Pos()) replay continues
// bit-identically — the snapshot/restore contract every Source honors.
func TestSurgeDeterminism(t *testing.T) {
	for _, kind := range []Kind{Surge, SurgeLite} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			opts := Options{Kind: kind, Seed: 42, Hours: 6}
			a, err := New(opts)
			if err != nil {
				t.Fatal(err)
			}
			b, err := New(opts)
			if err != nil {
				t.Fatal(err)
			}
			sa, sb := a.Source(3, 1), b.Source(3, 1)
			for i := 0; i < 500; i++ {
				if x, y := sa.Next(), sb.Next(); x != y {
					t.Fatalf("step %d: same options diverged: %+v != %+v", i, x, y)
				}
			}

			other, err := New(Options{Kind: kind, Seed: 43, Hours: 6})
			if err != nil {
				t.Fatal(err)
			}
			so := other.Source(3, 1)
			ref := a.Source(3, 1)
			same := 0
			for i := 0; i < 500; i++ {
				if so.Next() == ref.Next() {
					same++
				}
			}
			if same == 500 {
				t.Fatal("different seeds produced identical streams")
			}

			// Pos/Skip replay: advance 137 steps, then replay a fresh source
			// to that position and compare the continuation.
			run := a.Source(5, 2)
			for i := 0; i < 137; i++ {
				run.Next()
			}
			replay := a.Source(5, 2)
			replay.Skip(run.Pos())
			for i := 0; i < 200; i++ {
				if x, y := run.Next(), replay.Next(); x != y {
					t.Fatalf("replay step %d: %+v != %+v", i, x, y)
				}
			}
		})
	}
}

// TestSurgeRegimesFire checks the default mix actually produces every
// surge regime over a day, and that surge windows lift the workload above
// the calm baseline.
func TestSurgeRegimesFire(t *testing.T) {
	opts := Options{Kind: Surge, Seed: 1}.WithDefaults()
	gen, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	rep := gen.(RegimeReporter)
	n := opts.Hours * SamplesPerHour
	seen := map[Regime]int{}
	for i := 0; i < n; i++ {
		seen[rep.RegimeAt(i)]++
	}
	for _, reg := range []Regime{RegimeCalm, RegimeTrain, RegimeFlash, RegimeBurst} {
		if seen[reg] == 0 {
			t.Errorf("regime %v never occurred in %d samples (histogram %v)", reg, n, seen)
		}
	}
	if seen[RegimeCalm] < n/4 {
		t.Errorf("calm covers only %d/%d samples", seen[RegimeCalm], n)
	}

	// Surge steps must, on average, sit above the same VM's calm baseline.
	src := gen.Source(0, 0)
	base := NewWorkloadGen(opts.Hours, opts.Seed)
	var surgeSum, baseSum float64
	surgeN := 0
	for i := 0; i < n; i++ {
		p, b := src.Next(), base.Next()
		if rep.RegimeAt(i) != RegimeCalm {
			surgeSum += p.Max()
			baseSum += b.Max()
			surgeN++
		} else if p != b {
			t.Fatalf("calm step %d modified the baseline: %+v != %+v", i, p, b)
		}
	}
	if surgeN == 0 {
		t.Fatal("no surge samples")
	}
	if surgeSum <= baseSum {
		t.Errorf("surge mean %.3f not above baseline mean %.3f", surgeSum/float64(surgeN), baseSum/float64(surgeN))
	}
}

// TestSurgeRackCorrelation: during a rack-burst episode, VMs in member
// racks surge together while non-member racks stay on the baseline —
// the correlated multi-rack property the regional pre-alert evaluation
// depends on.
func TestSurgeRackCorrelation(t *testing.T) {
	opts := Options{Kind: Surge, Seed: 11, Hours: 12,
		Surge: SurgeParams{BurstWeight: 1, RackFraction: 0.5}}
	gen, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	rep := gen.(RegimeReporter)
	const racks = 16
	n := 12 * SamplesPerHour
	// One VM per rack; same vmID so the baselines are identical and any
	// divergence is the rack-keyed surge component.
	srcs := make([]Source, racks)
	for r := range srcs {
		srcs[r] = gen.Source(0, r)
	}
	base := gen.Source(0, 0)
	_ = base
	members := map[int]bool{}
	burstSteps := 0
	for t2 := 0; t2 < n; t2++ {
		ps := make([]Profile, racks)
		for r := range srcs {
			ps[r] = srcs[r].Next()
		}
		if rep.RegimeAt(t2) != RegimeBurst {
			continue
		}
		burstSteps++
		for r := 1; r < racks; r++ {
			if ps[r] != ps[0] {
				// racks diverged: some are members, some are not
				members[r] = true
			}
		}
	}
	if burstSteps == 0 {
		t.Fatal("burst-only mix produced no burst steps")
	}
	if len(members) == 0 {
		t.Fatal("rack-burst episodes never differentiated racks")
	}
	if len(members) == racks-1 {
		t.Log("every rack diverged from rack 0 at some point (possible but suspicious)")
	}
}

// TestSurgeLiteMemoryShape pins the hyperscale contract: SurgeLiteGen
// Skip is O(1) (counter bump) and At is position-independent.
func TestSurgeLiteRandomAccess(t *testing.T) {
	gen, err := New(Options{Kind: SurgeLite, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	src := gen.Source(9, 4).(*SurgeLiteGen)
	var seq []Profile
	for i := 0; i < 300; i++ {
		seq = append(seq, src.Next())
	}
	for _, i := range []int64{0, 17, 123, 299} {
		if got := src.At(i); got != seq[i] {
			t.Fatalf("At(%d) = %+v, want %+v", i, got, seq[i])
		}
	}
}

// TestSurgeGolden pins the exact first samples of the surge stream so
// accidental generator drift (which would silently invalidate recorded
// benchmarks) fails loudly. Regenerate with -update.
func TestSurgeGolden(t *testing.T) {
	gen, err := New(Options{Kind: Surge, Seed: 7, Hours: 2})
	if err != nil {
		t.Fatal(err)
	}
	src := gen.Source(1, 0)
	var b strings.Builder
	b.WriteString("t,cpu,mem,io,trf\n")
	for i := 0; i < 96; i++ {
		p := src.Next()
		fmt.Fprintf(&b, "%d,%.12g,%.12g,%.12g,%.12g\n", i, p.CPU, p.Mem, p.IO, p.TRF)
	}
	path := filepath.Join("testdata", "surge_golden.csv")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if b.String() != string(want) {
		t.Fatalf("surge stream drifted from golden %s (run with -update if intentional)", path)
	}
}

// TestSurgeProfilesInRange: every component stays normalized.
func TestSurgeProfilesInRange(t *testing.T) {
	for _, kind := range []Kind{Surge, SurgeLite} {
		gen, err := New(Options{Kind: kind, Seed: 5, Hours: 6,
			Surge: SurgeParams{Intensity: 2}})
		if err != nil {
			t.Fatal(err)
		}
		src := gen.Source(2, 3)
		for i := 0; i < 6*SamplesPerHour; i++ {
			p := src.Next()
			for _, v := range p.Components() {
				if v < 0 || v > 1 || math.IsNaN(v) {
					t.Fatalf("%v step %d out of range: %+v", kind, i, p)
				}
			}
		}
	}
}
