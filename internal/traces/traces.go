// Package traces generates the synthetic workload traces standing in for
// the ZopleCloud Corp. production data of the paper's Figs. 3–5 (see
// DESIGN.md §5 for the substitution rationale). Three generators mirror
// the three figures:
//
//   - CPU: a diurnal utilization curve in percent, with load spikes that
//     occasionally push it toward the 90% overload region (Fig. 3).
//   - DiskIO: a bursty I/O rate in MB/s with heavy right tail (Fig. 4).
//   - WeeklyTraffic: switch traffic in MB with strong daily and weekly
//     periodicity, mild trend, AR(1) noise, and a nonlinear amplitude
//     modulation that gives NARNET something ARIMA cannot capture (Fig. 5).
//
// All generators are deterministic given their seed.
package traces

import (
	"fmt"
	"math"
	"math/rand"

	"sheriff/internal/timeseries"
)

// Sample frequencies: the paper samples minute-level data.
const (
	SamplesPerHour = 60
	SamplesPerDay  = 24 * SamplesPerHour
)

// CPUConfig parameterizes the diurnal CPU-utilization generator.
type CPUConfig struct {
	Hours     int     // trace length in hours (Fig. 3 shows ~24h)
	Base      float64 // baseline utilization percent (default 35)
	Amplitude float64 // diurnal swing percent (default 25)
	Noise     float64 // Gaussian noise std dev in percent (default 6)
	SpikeProb float64 // per-sample probability of a load spike (default 0.01)
	SpikeSize float64 // spike magnitude in percent (default 30)
	Seed      int64
}

func (c CPUConfig) withDefaults() CPUConfig {
	if c.Hours <= 0 {
		c.Hours = 24
	}
	if c.Base == 0 {
		c.Base = 35
	}
	if c.Amplitude == 0 {
		c.Amplitude = 25
	}
	if c.Noise == 0 {
		c.Noise = 6
	}
	if c.SpikeProb == 0 {
		c.SpikeProb = 0.01
	}
	if c.SpikeSize == 0 {
		c.SpikeSize = 30
	}
	return c
}

// CPU generates a diurnal CPU utilization trace in percent, clamped to
// [0, 100].
func CPU(cfg CPUConfig) *timeseries.Series {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Hours * SamplesPerHour
	spike := 0.0
	return timeseries.FromFunc(n, func(t int) float64 {
		hour := float64(t) / SamplesPerHour
		// Peak in the afternoon (hour 14), trough before dawn.
		diurnal := cfg.Amplitude * math.Sin(2*math.Pi*(hour-8)/24)
		if rng.Float64() < cfg.SpikeProb {
			spike = cfg.SpikeSize * (0.5 + rng.Float64())
		}
		spike *= 0.9 // spikes decay geometrically
		v := cfg.Base + diurnal + spike + cfg.Noise*rng.NormFloat64()
		return clamp(v, 0, 100)
	})
}

// DiskIOConfig parameterizes the bursty disk-I/O generator.
type DiskIOConfig struct {
	Hours     int     // trace length in hours (Fig. 4 shows ~24h)
	Base      float64 // baseline rate MB/s (default 120)
	BurstProb float64 // per-sample burst probability (default 0.03)
	BurstMean float64 // mean burst magnitude MB/s (default 400)
	Noise     float64 // multiplicative noise scale (default 0.25)
	Seed      int64
}

func (c DiskIOConfig) withDefaults() DiskIOConfig {
	if c.Hours <= 0 {
		c.Hours = 24
	}
	if c.Base == 0 {
		c.Base = 120
	}
	if c.BurstProb == 0 {
		c.BurstProb = 0.03
	}
	if c.BurstMean == 0 {
		c.BurstMean = 400
	}
	if c.Noise == 0 {
		c.Noise = 0.25
	}
	return c
}

// DiskIO generates a bursty disk I/O rate trace in MB/s (non-negative,
// heavy right tail like the raw data of Fig. 4).
func DiskIO(cfg DiskIOConfig) *timeseries.Series {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Hours * SamplesPerHour
	burst := 0.0
	return timeseries.FromFunc(n, func(t int) float64 {
		hour := float64(t) / SamplesPerHour
		// Mild diurnal shape: batch jobs at night raise the floor.
		base := cfg.Base * (1 + 0.3*math.Cos(2*math.Pi*hour/24))
		if rng.Float64() < cfg.BurstProb {
			// Exponential burst sizes give the heavy tail.
			burst = cfg.BurstMean * rng.ExpFloat64()
		}
		burst *= 0.8
		v := base + burst
		v *= 1 + cfg.Noise*rng.NormFloat64()
		if v < 0 {
			v = 0
		}
		return v
	})
}

// TrafficConfig parameterizes the weekly switch-traffic generator.
type TrafficConfig struct {
	Days       int     // trace length in days (Fig. 5 shows ~7)
	PerDay     int     // samples per day (default 64, coarse like Fig. 5)
	Base       float64 // baseline traffic MB (default 45)
	DailyAmp   float64 // daily swing MB (default 25)
	WeeklyAmp  float64 // weekend damping fraction (default 0.35)
	Trend      float64 // per-day linear growth MB (default 0.4)
	NoisePhi   float64 // AR(1) noise coefficient (default 0.6)
	NoiseSigma float64 // AR(1) innovation std dev (default 2.5)
	Nonlinear  float64 // amplitude-modulation strength 0..1 (default 0.35)
	Seed       int64
}

func (c TrafficConfig) withDefaults() TrafficConfig {
	if c.Days <= 0 {
		c.Days = 7
	}
	if c.PerDay <= 0 {
		c.PerDay = 64
	}
	if c.Base == 0 {
		c.Base = 45
	}
	if c.DailyAmp == 0 {
		c.DailyAmp = 25
	}
	if c.WeeklyAmp == 0 {
		c.WeeklyAmp = 0.35
	}
	if c.Trend == 0 {
		c.Trend = 0.4
	}
	if c.NoisePhi == 0 {
		c.NoisePhi = 0.6
	}
	if c.NoiseSigma == 0 {
		c.NoiseSigma = 2.5
	}
	if c.Nonlinear == 0 {
		c.Nonlinear = 0.35
	}
	return c
}

// WeeklyTraffic generates the weekly-periodic switch traffic trace of
// Fig. 5: regular daily peaks and troughs, weekend damping, slight upward
// trend, autocorrelated noise, and a slow nonlinear amplitude modulation.
func WeeklyTraffic(cfg TrafficConfig) *timeseries.Series {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Days * cfg.PerDay
	ar := 0.0
	return timeseries.FromFunc(n, func(t int) float64 {
		day := float64(t) / float64(cfg.PerDay)
		frac := day - math.Floor(day) // time of day in [0,1)
		// Daily peak mid-day; weekend (days 5,6 of each week) damped.
		weekday := int(math.Floor(day)) % 7
		damp := 1.0
		if weekday >= 5 {
			damp = 1 - cfg.WeeklyAmp
		}
		// Nonlinear amplitude modulation: the daily swing itself swells
		// and shrinks with a slow envelope, a multiplicative effect a
		// linear ARIMA cannot express.
		envelope := 1 + cfg.Nonlinear*math.Sin(2*math.Pi*day/3.3)
		daily := cfg.DailyAmp * envelope * damp * math.Sin(2*math.Pi*(frac-0.25))
		ar = cfg.NoisePhi*ar + cfg.NoiseSigma*rng.NormFloat64()
		v := cfg.Base + cfg.Trend*day + daily + ar
		if v < 0 {
			v = 0
		}
		return v
	})
}

// Profile bundles one synchronized sample of the four workload-profile
// components (Sec. IV.A): CPU, memory, disk I/O, and traffic — each
// already normalized to [0, 1].
type Profile struct {
	CPU float64
	Mem float64
	IO  float64
	TRF float64
}

// Components returns the profile as the ordered vector
// W = [CPU, MEM, IO, TRF].
func (p Profile) Components() [4]float64 { return [4]float64{p.CPU, p.Mem, p.IO, p.TRF} }

// Max returns the largest component, the quantity the ALERT rule reports.
func (p Profile) Max() float64 {
	m := p.CPU
	for _, v := range [...]float64{p.Mem, p.IO, p.TRF} {
		if v > m {
			m = v
		}
	}
	return m
}

// WorkloadGen produces correlated normalized workload profiles for one VM,
// used to drive simulations. Each component follows its own generator;
// memory tracks CPU with inertia (memory-bound apps hold allocations).
type WorkloadGen struct {
	cpu, io, trf *timeseries.Series
	mem          float64
	rng          *rand.Rand
	t            int
}

// NewWorkloadGen builds a workload generator with the given horizon (in
// hours) and seed.
func NewWorkloadGen(hours int, seed int64) *WorkloadGen {
	cpu, _ := CPU(CPUConfig{Hours: hours, Seed: seed}).Normalized()
	io, _ := DiskIO(DiskIOConfig{Hours: hours, Seed: seed + 1}).Normalized()
	days := hours/24 + 1
	trfRaw := WeeklyTraffic(TrafficConfig{Days: days, PerDay: SamplesPerDay, Seed: seed + 2})
	trf, _ := trfRaw.Normalized()
	return &WorkloadGen{
		cpu: cpu,
		io:  io,
		trf: trf,
		mem: 0.4,
		rng: rand.New(rand.NewSource(seed + 3)),
	}
}

// Next returns the next synchronized workload profile. It wraps around at
// the end of the underlying traces, so it never runs out.
func (g *WorkloadGen) Next() Profile {
	i := g.t
	g.t++
	at := func(s *timeseries.Series) float64 { return s.At(i % s.Len()) }
	cpu := at(g.cpu)
	// Memory follows CPU with inertia plus small noise.
	g.mem = clamp(0.9*g.mem+0.1*cpu+0.02*g.rng.NormFloat64(), 0, 1)
	return Profile{CPU: cpu, Mem: g.mem, IO: at(g.io), TRF: at(g.trf)}
}

// Len reports the number of distinct samples before the generator wraps.
func (g *WorkloadGen) Len() int { return g.cpu.Len() }

// Pos reports how many profiles Next has produced. Together with the
// constructor arguments it fully determines the generator's state: a
// fresh generator with the same hours and seed advanced by Skip(Pos())
// continues bit-identically.
func (g *WorkloadGen) Pos() int { return g.t }

// Skip advances the generator by n profiles, discarding them. Used to
// replay a deterministic generator to a snapshotted position.
func (g *WorkloadGen) Skip(n int) {
	for i := 0; i < n; i++ {
		g.Next()
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Describe returns a short human-readable summary of a series, used by
// the trace-printing CLI.
func Describe(name string, s *timeseries.Series) string {
	return fmt.Sprintf("%s: n=%d mean=%.2f std=%.2f min=%.2f max=%.2f",
		name, s.Len(), s.Mean(), s.Std(), s.Min(), s.Max())
}
