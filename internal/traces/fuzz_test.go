package traces

import (
	"strings"
	"testing"
)

// FuzzReadCSV exercises the CSV parser with arbitrary input: it must
// never panic, and any successfully parsed series must survive a
// write/read round trip.
func FuzzReadCSV(f *testing.F) {
	f.Add("t,v\n0,1.5\n1,2.5\n")
	f.Add("0,1\n")
	f.Add("# comment\n\n0,-3.25\n")
	f.Add("t,v\n0,NaN\n")
	f.Add("a,b,c\n")
	f.Fuzz(func(t *testing.T, input string) {
		s, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		if s.Len() == 0 {
			t.Fatal("successful parse returned empty series")
		}
		var sb strings.Builder
		if err := WriteCSV(&sb, "fuzz", s); err != nil {
			t.Fatalf("re-write failed: %v", err)
		}
		s2, err := ReadCSV(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		if s2.Len() != s.Len() {
			t.Fatalf("round trip changed length: %d -> %d", s.Len(), s2.Len())
		}
	})
}

// FuzzReadProfileCSV: the profile parser must never panic.
func FuzzReadProfileCSV(f *testing.F) {
	f.Add("t,cpu,mem,io,trf\n0,0.1,0.2,0.3,0.4\n")
	f.Add("0,1,2,3,4\n")
	f.Fuzz(func(t *testing.T, input string) {
		profiles, err := ReadProfileCSV(strings.NewReader(input))
		if err != nil {
			return
		}
		if len(profiles) == 0 {
			t.Fatal("successful parse returned no profiles")
		}
	})
}
