package traces

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"sheriff/internal/timeseries"
)

func TestCPUDefaults(t *testing.T) {
	s := CPU(CPUConfig{Seed: 1})
	if s.Len() != 24*SamplesPerHour {
		t.Fatalf("len = %d, want %d", s.Len(), 24*SamplesPerHour)
	}
	if s.Min() < 0 || s.Max() > 100 {
		t.Fatalf("CPU out of range: [%v, %v]", s.Min(), s.Max())
	}
	if s.Std() < 1 {
		t.Fatalf("CPU trace suspiciously flat: std=%v", s.Std())
	}
}

func TestCPUDeterministic(t *testing.T) {
	a := CPU(CPUConfig{Seed: 7})
	b := CPU(CPUConfig{Seed: 7})
	for i := 0; i < a.Len(); i++ {
		if a.At(i) != b.At(i) {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	c := CPU(CPUConfig{Seed: 8})
	same := true
	for i := 0; i < a.Len(); i++ {
		if a.At(i) != c.At(i) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestCPUDiurnalShape(t *testing.T) {
	s := CPU(CPUConfig{Hours: 24, Seed: 3, Noise: 0.01, SpikeProb: 1e-9})
	// Afternoon (hour 14) should be clearly above pre-dawn (hour 2).
	afternoon := s.At(14 * SamplesPerHour)
	predawn := s.At(2 * SamplesPerHour)
	if afternoon <= predawn {
		t.Fatalf("no diurnal shape: afternoon %.1f <= predawn %.1f", afternoon, predawn)
	}
}

func TestDiskIONonNegativeAndBursty(t *testing.T) {
	s := DiskIO(DiskIOConfig{Seed: 2})
	if s.Min() < 0 {
		t.Fatalf("negative I/O rate %v", s.Min())
	}
	// Bursts should push the max well above the mean.
	if s.Max() < 2*s.Mean() {
		t.Fatalf("no bursts: max %.1f < 2×mean %.1f", s.Max(), s.Mean())
	}
}

func TestWeeklyTrafficLengthAndPeriodicity(t *testing.T) {
	cfg := TrafficConfig{Days: 7, PerDay: 64, Seed: 4}
	s := WeeklyTraffic(cfg)
	if s.Len() != 7*64 {
		t.Fatalf("len = %d", s.Len())
	}
	// Autocorrelation at one-day lag should be strong and positive.
	acf, err := timeseries.ACF(s, 64)
	if err != nil {
		t.Fatal(err)
	}
	if acf[64] < 0.3 {
		t.Fatalf("daily periodicity weak: ACF(1 day) = %.3f", acf[64])
	}
}

func TestWeeklyTrafficWeekendDamping(t *testing.T) {
	cfg := TrafficConfig{Days: 7, PerDay: 64, Seed: 5, NoiseSigma: 0.01, Trend: 1e-9}
	s := WeeklyTraffic(cfg)
	// Mid-day peak of a weekday vs the weekend.
	peakAt := func(day int) float64 {
		max := math.Inf(-1)
		for i := day * 64; i < (day+1)*64; i++ {
			if s.At(i) > max {
				max = s.At(i)
			}
		}
		return max
	}
	if peakAt(5) >= peakAt(2) {
		t.Fatalf("weekend peak %.1f not damped vs weekday %.1f", peakAt(5), peakAt(2))
	}
}

func TestWeeklyTrafficTrend(t *testing.T) {
	cfg := TrafficConfig{Days: 14, PerDay: 64, Seed: 6, Trend: 5, NoiseSigma: 0.1}
	s := WeeklyTraffic(cfg)
	firstWeek := s.Slice(0, 7*64).Mean()
	secondWeek := s.Slice(7*64, 14*64).Mean()
	if secondWeek-firstWeek < 20 {
		t.Fatalf("trend not visible: %.1f -> %.1f", firstWeek, secondWeek)
	}
}

func TestProfileComponentsAndMax(t *testing.T) {
	p := Profile{CPU: 0.2, Mem: 0.9, IO: 0.1, TRF: 0.5}
	c := p.Components()
	if c != [4]float64{0.2, 0.9, 0.1, 0.5} {
		t.Fatalf("Components = %v", c)
	}
	if p.Max() != 0.9 {
		t.Fatalf("Max = %v, want 0.9", p.Max())
	}
}

func TestProfileMaxProperty(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		if anyNaN(a, b, c, d) {
			return true
		}
		p := Profile{CPU: a, Mem: b, IO: c, TRF: d}
		m := p.Max()
		return m >= a && m >= b && m >= c && m >= d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func anyNaN(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) {
			return true
		}
	}
	return false
}

func TestWorkloadGenNormalizedRange(t *testing.T) {
	g := NewWorkloadGen(24, 9)
	for i := 0; i < 500; i++ {
		p := g.Next()
		for j, v := range p.Components() {
			if v < 0 || v > 1 {
				t.Fatalf("component %d out of [0,1] at step %d: %v", j, i, v)
			}
		}
	}
}

func TestWorkloadGenWrapsAround(t *testing.T) {
	g := NewWorkloadGen(1, 10) // only 60 samples
	n := g.Len()
	for i := 0; i < n*2+5; i++ {
		g.Next() // must not panic past the end
	}
}

func TestWorkloadGenDeterministic(t *testing.T) {
	g1 := NewWorkloadGen(2, 11)
	g2 := NewWorkloadGen(2, 11)
	for i := 0; i < 100; i++ {
		if g1.Next() != g2.Next() {
			t.Fatalf("same-seed generators diverged at %d", i)
		}
	}
}

func TestDescribe(t *testing.T) {
	s := timeseries.New([]float64{1, 2, 3})
	d := Describe("cpu", s)
	if !strings.Contains(d, "cpu") || !strings.Contains(d, "n=3") {
		t.Fatalf("Describe = %q", d)
	}
}

func TestClamp(t *testing.T) {
	if clamp(-1, 0, 10) != 0 || clamp(11, 0, 10) != 10 || clamp(5, 0, 10) != 5 {
		t.Fatal("clamp wrong")
	}
}
