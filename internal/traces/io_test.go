package traces

import (
	"strings"
	"testing"

	"sheriff/internal/timeseries"
)

func TestCSVRoundTrip(t *testing.T) {
	s := timeseries.New([]float64{1.5, -2, 3.25, 0})
	var sb strings.Builder
	if err := WriteCSV(&sb, "traffic", s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() {
		t.Fatalf("len %d, want %d", got.Len(), s.Len())
	}
	for i := 0; i < s.Len(); i++ {
		if got.At(i) != s.At(i) {
			t.Fatalf("value %d: %v vs %v", i, got.At(i), s.At(i))
		}
	}
}

func TestWriteCSVSanitizesHeader(t *testing.T) {
	var sb strings.Builder
	if err := WriteCSV(&sb, "a,b\nc", timeseries.New([]float64{1})); err != nil {
		t.Fatal(err)
	}
	header := strings.SplitN(sb.String(), "\n", 2)[0]
	if strings.Count(header, ",") != 1 {
		t.Fatalf("header not sanitized: %q", header)
	}
	var sb2 strings.Builder
	if err := WriteCSV(&sb2, "", timeseries.New([]float64{1})); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb2.String(), "t,value") {
		t.Fatalf("empty name default wrong: %q", sb2.String())
	}
}

func TestReadCSVSkipsCommentsAndBlank(t *testing.T) {
	in := "t,v\n# comment\n\n0,1.5\n1,2.5\n"
	s, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 || s.At(1) != 2.5 {
		t.Fatalf("parsed %v", s.Values())
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadCSV(strings.NewReader("0,1,2\n")); err == nil {
		t.Error("3-field row accepted")
	}
	if _, err := ReadCSV(strings.NewReader("0,1.5\n1,abc\n")); err == nil {
		t.Error("bad float after data accepted")
	}
}

func TestProfileCSVRoundTrip(t *testing.T) {
	in := []Profile{
		{CPU: 0.5, Mem: 0.4, IO: 0.3, TRF: 0.2},
		{CPU: 0.9, Mem: 0.1, IO: 0.0, TRF: 1.0},
	}
	var sb strings.Builder
	if err := WriteProfileCSV(&sb, in); err != nil {
		t.Fatal(err)
	}
	got, err := ReadProfileCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(in) {
		t.Fatalf("len %d, want %d", len(got), len(in))
	}
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("profile %d: %+v vs %+v", i, got[i], in[i])
		}
	}
}

func TestReadProfileCSVErrors(t *testing.T) {
	if _, err := ReadProfileCSV(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ReadProfileCSV(strings.NewReader("0,1\n")); err == nil {
		t.Error("short row accepted")
	}
	if _, err := ReadProfileCSV(strings.NewReader("0,0.1,0.2,0.3,0.4\n1,x,0.2,0.3,0.4\n")); err == nil {
		t.Error("bad float after data accepted")
	}
}

func TestGeneratedTraceCSVIntegration(t *testing.T) {
	s := WeeklyTraffic(TrafficConfig{Days: 2, PerDay: 32, Seed: 5})
	var sb strings.Builder
	if err := WriteCSV(&sb, "weekly", s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != s.Len() {
		t.Fatalf("round trip lost points: %d vs %d", got.Len(), s.Len())
	}
}
