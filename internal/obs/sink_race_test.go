package obs

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// countSink counts emissions; a pointer type so RemoveSink can find it.
type countSink struct{ n atomic.Int64 }

func (s *countSink) Emit(Event) error { s.n.Add(1); return nil }

// failSink errors on every emission.
type failSink struct{ n atomic.Int64 }

func (s *failSink) Emit(Event) error { s.n.Add(1); return errors.New("failSink: boom") }

// TestAddRemoveSinkDuringRecording attaches and detaches streaming
// subscribers while writers hammer Record. Run under -race: the point is
// that mid-run subscription churn needs no recorder restart.
func TestAddRemoveSinkDuringRecording(t *testing.T) {
	r, err := New(Options{Ring: 64})
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter, churners = 8, 400, 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Record(Event{Kind: KindAlerts, VM: w, Value: float64(i)})
			}
		}(w)
	}
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := &countSink{}
				r.AddSink(s)
				if !r.RemoveSink(s) {
					t.Error("RemoveSink lost an attached sink")
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Seq(); got != writers*perWriter {
		t.Fatalf("recorded %d events, want %d", got, writers*perWriter)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("unexpected sink error: %v", err)
	}
}

// TestErroringSinkDoesNotWedgeLaterSinks checks the error-isolation
// contract: a sink returning an error keeps receiving events, later sinks
// in the chain still receive every event, and Err reports the first
// failure.
func TestErroringSinkDoesNotWedgeLaterSinks(t *testing.T) {
	before := &countSink{}
	bad := &failSink{}
	after := &countSink{}
	r, err := New(Options{Ring: 16, Sinks: []Sink{before, bad, after}})
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		r.Record(Event{Kind: KindManage, Value: float64(i)})
	}
	if got := before.n.Load(); got != n {
		t.Errorf("sink before the failure saw %d events, want %d", got, n)
	}
	if got := bad.n.Load(); got != n {
		t.Errorf("failing sink saw %d events, want %d (must keep being offered events)", got, n)
	}
	if got := after.n.Load(); got != n {
		t.Errorf("sink after the failure saw %d events, want %d (wedged by earlier error)", got, n)
	}
	if err := r.Err(); err == nil {
		t.Error("Err() = nil, want first sink error")
	}
}

// TestRemoveSinkSemantics pins down identity comparison and the
// non-comparable escape hatch.
func TestRemoveSinkSemantics(t *testing.T) {
	r, err := New(Options{Ring: 4})
	if err != nil {
		t.Fatal(err)
	}
	a, b := &countSink{}, &countSink{}
	r.AddSink(a)
	r.AddSink(b)
	if r.RemoveSink(&countSink{}) {
		t.Error("removed a sink that was never attached")
	}
	if !r.RemoveSink(a) {
		t.Error("failed to remove attached sink a")
	}
	r.Record(Event{Kind: KindAlerts, Value: 1})
	if got := a.n.Load(); got != 0 {
		t.Errorf("removed sink still received %d events", got)
	}
	if got := b.n.Load(); got != 1 {
		t.Errorf("remaining sink received %d events, want 1", got)
	}
	// Func has a non-comparable dynamic type: RemoveSink must decline
	// rather than panic.
	f := Func(func(Event) error { return nil })
	r.AddSink(f)
	if r.RemoveSink(f) {
		t.Error("RemoveSink claimed to remove a non-comparable Func sink")
	}
	var nilRec *Recorder
	if nilRec.RemoveSink(b) {
		t.Error("nil recorder removed a sink")
	}
}
