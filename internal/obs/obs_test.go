package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	r.Record(Event{Kind: KindAck})
	r.SetStep(3)
	r.AddSink(NewJSONL(&bytes.Buffer{}))
	if r.Seq() != 0 || r.Events() != nil || r.Count(KindAck) != 0 || r.Err() != nil {
		t.Fatal("nil recorder retained state")
	}
	if got := r.Stats(KindAck); got.Count != 0 {
		t.Fatalf("nil stats = %+v", got)
	}
	if r.Kinds() != nil {
		t.Fatal("nil recorder has kinds")
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := (Options{Ring: -1}).Validate(); err == nil {
		t.Fatal("negative ring accepted")
	}
	if _, err := New(Options{Ring: -1}); err == nil {
		t.Fatal("New accepted negative ring")
	}
	if err := (Options{}).Validate(); err != nil {
		t.Fatalf("zero options rejected: %v", err)
	}
}

func TestSequenceAndStepStamping(t *testing.T) {
	r, err := New(Options{Ring: 8})
	if err != nil {
		t.Fatal(err)
	}
	r.Record(Event{Kind: KindRequest, Step: 99}) // producer Step is overwritten
	r.SetStep(7)
	r.Record(Event{Kind: KindAck})
	ev := r.Events()
	if len(ev) != 2 {
		t.Fatalf("events = %d, want 2", len(ev))
	}
	if ev[0].Seq != 1 || ev[1].Seq != 2 {
		t.Fatalf("seqs = %d, %d", ev[0].Seq, ev[1].Seq)
	}
	if ev[0].Step != 0 || ev[1].Step != 7 {
		t.Fatalf("steps = %d, %d", ev[0].Step, ev[1].Step)
	}
	if r.Seq() != 2 {
		t.Fatalf("Seq() = %d", r.Seq())
	}
}

func TestRingKeepsMostRecent(t *testing.T) {
	r, err := New(Options{Ring: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		r.Record(Event{Kind: KindSend, Value: float64(i)})
	}
	ev := r.Events()
	if len(ev) != 4 {
		t.Fatalf("ring holds %d, want 4", len(ev))
	}
	for i, e := range ev {
		if want := uint64(7 + i); e.Seq != want {
			t.Fatalf("event %d seq = %d, want %d", i, e.Seq, want)
		}
		if want := float64(6 + i); e.Value != want {
			t.Fatalf("event %d value = %v, want %v", i, e.Value, want)
		}
	}
	// Counters survive ring eviction.
	if got := r.Count(KindSend); got != 10 {
		t.Fatalf("count = %d, want 10", got)
	}
}

func TestKindCounters(t *testing.T) {
	r, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		r.Record(Event{Kind: KindSwap, Value: float64(i)})
	}
	r.Record(Event{Kind: KindDrop})
	st := r.Stats(KindSwap)
	if st.Count != 4 || st.Value.Mean() != 2.5 || st.Value.Min() != 1 || st.Value.Max() != 4 {
		t.Fatalf("swap stats = %+v", st)
	}
	if st.P95 < 1 || st.P95 > 4 {
		t.Fatalf("p95 = %v out of observed range", st.P95)
	}
	kinds := r.Kinds()
	if len(kinds) != 2 || kinds[0] != KindDrop || kinds[1] != KindSwap {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	r, err := New(Options{Sinks: []Sink{NewJSONL(&buf)}})
	if err != nil {
		t.Fatal(err)
	}
	r.SetStep(2)
	r.Record(Event{Kind: KindReject, Round: 3, Shim: 1, VM: 5, Host: 9,
		Value: 1.5, Attrs: map[string]string{"cause": "capacity"}})
	line := strings.TrimSpace(buf.String())
	var got Event
	if err := json.Unmarshal([]byte(line), &got); err != nil {
		t.Fatalf("bad JSONL %q: %v", line, err)
	}
	want := Event{Seq: 1, Step: 2, Round: 3, Shim: 1, Kind: KindReject,
		VM: 5, Host: 9, Value: 1.5, Attrs: map[string]string{"cause": "capacity"}}
	if got.Seq != want.Seq || got.Step != want.Step || got.Round != want.Round ||
		got.Shim != want.Shim || got.Kind != want.Kind || got.VM != want.VM ||
		got.Host != want.Host || got.Value != want.Value || got.Attrs["cause"] != "capacity" {
		t.Fatalf("round-trip = %+v, want %+v", got, want)
	}
}

func TestSinkErrorSurfaces(t *testing.T) {
	boom := errors.New("boom")
	r, err := New(Options{Sinks: []Sink{Func(func(Event) error { return boom })}})
	if err != nil {
		t.Fatal(err)
	}
	r.Record(Event{Kind: KindSend})
	if !errors.Is(r.Err(), boom) {
		t.Fatalf("Err() = %v, want %v", r.Err(), boom)
	}
}
