package obs

import (
	"encoding/json"
	"io"
)

// Sink receives recorded events. Emit is called under the recorder's
// lock, in sequence order; implementations need no locking of their own
// when used through a single recorder.
type Sink interface {
	Emit(e Event) error
}

// JSONL streams events to a writer as one JSON object per line — the
// trace format behind `sheriffsim -trace` and `sheriffd -trace`. Each
// event is written with a single Write call, so an unbuffered *os.File
// needs no flush.
type JSONL struct {
	w io.Writer
}

// NewJSONL wraps a writer as a JSONL sink.
func NewJSONL(w io.Writer) *JSONL { return &JSONL{w: w} }

// Emit implements Sink.
func (s *JSONL) Emit(e Event) error {
	buf, err := json.Marshal(e)
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = s.w.Write(buf)
	return err
}

// Func adapts a function to the Sink interface (test helper).
type Func func(e Event) error

// Emit implements Sink.
func (f Func) Emit(e Event) error { return f(e) }
