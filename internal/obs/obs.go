// Package obs is the structured observability layer: a ring-buffered
// recorder of protocol- and phase-level events with monotonic sequence
// numbers, per-kind streaming counters (metrics.Summary + P² p95 over
// event values), and pluggable sinks (the in-memory ring for tests, a
// JSONL writer for the daemons' -trace flags).
//
// The recorder is threaded through the layers that previously swallowed
// their history — runtime.Step phases, migrate.DistributedVMMigration's
// REQUEST/ACK/REJECT/retry handshakes, comm.Bus deliveries and drops, and
// kmedian.LocalSearch's swap trajectory — so a slow or failed round can be
// replayed event by event instead of inferred from end-of-run aggregates.
//
// A nil *Recorder is a valid no-op: every method has a nil fast path, so
// instrumented code calls r.Record(...) unconditionally and pays nothing
// when observability is off. Producers that must build attribute maps
// guard with r.Enabled() first.
package obs

import (
	"fmt"
	"reflect"
	"sort"
	"sync"

	"sheriff/internal/metrics"
)

// Kind tags an event's role in the taxonomy. Kinds are short stable
// strings so JSONL traces stay grep-able.
type Kind string

// The event taxonomy (DESIGN.md §9).
const (
	// KindPhase is one runtime.Step phase timing; Phase names it
	// (predict/flows/congestion/manage) and Value is seconds.
	KindPhase Kind = "phase"
	// KindAlerts is a per-rack alert tally for one step; Shim is the rack
	// index and Value the alert count handed to its shim.
	KindAlerts Kind = "alerts"
	// KindManage is one shim's management round; Value is seconds.
	KindManage Kind = "manage"

	// KindRequest is a REQUEST handshake initiation (Alg. 4); Round is the
	// protocol round and Value the proposed migration cost.
	KindRequest Kind = "request"
	// KindAck is a granted handshake (the VM moved).
	KindAck Kind = "ack"
	// KindReject is a refused handshake; attrs carry the cause.
	KindReject Kind = "reject"
	// KindRetry is a request re-queued after a presumed message loss, or a
	// fail-queued VM re-entering a later migration round (attrs carry the
	// cause: "timeout" vs "queue").
	KindRetry Kind = "retry"
	// KindUnplaced marks a VM abandoned by the protocol.
	KindUnplaced Kind = "unplaced"
	// KindPreempt is an eviction: VM is the victim detached from Host to
	// admit a higher-severity VM (attrs carry "for", the admitted VM, and
	// the two severity tiers).
	KindPreempt Kind = "preempt"
	// KindRequeue is a VM parked in the migration fail-queue to retry in a
	// later round instead of falling back immediately; attrs carry the
	// attempt count.
	KindRequeue Kind = "requeue"

	// KindSend is a bus send; Shim is the sender.
	KindSend Kind = "send"
	// KindDeliver is a bus delivery into the destination inbox.
	KindDeliver Kind = "deliver"
	// KindDrop is a bus loss; attrs carry the seed-deterministic cause
	// ("loss", "overflow", or an injected fault such as "partition:<name>").
	KindDrop Kind = "drop"
	// KindDup is a fabric-duplicated copy enqueued by the fault injector.
	KindDup Kind = "dup"
	// KindReorder is a delivery batch shuffled by the fault injector;
	// Value is the batch size.
	KindReorder Kind = "reorder"

	// KindBackoff is a retried request deferred by exponential backoff;
	// Value is the deferral in rounds and attrs carry the attempt number.
	KindBackoff Kind = "backoff"
	// KindSuppress is a duplicate REQUEST or reply discarded by the
	// protocol's message-ID dedup; attrs name the suppressed message type.
	KindSuppress Kind = "suppress"
	// KindFallback is a VM degraded from the distributed protocol to local
	// sequential placement; attrs carry the cause (budget/partition/
	// rounds/no-destination).
	KindFallback Kind = "fallback"

	// KindCost is a cost-trajectory point (kmedian.LocalSearch start).
	KindCost Kind = "cost"
	// KindSwap is an accepted local-search swap; Value is the new cost.
	KindSwap Kind = "swap"
	// KindScan is one swap-candidate scan; Value is the number of
	// candidate ranks examined before acceptance (or the full space).
	KindScan Kind = "scan"
	// KindForecast is one deep-pool rack forecast; Shim is the rack
	// index and Value the predicted next-period rack stress.
	KindForecast Kind = "forecast"
	// KindIngest is an ingest-plane event (accepted batch, drop, alert
	// resolution); Value depends on the Phase label.
	KindIngest Kind = "ingest"
)

// Event is one recorded observation. Identity fields (Shim, VM, Host) use
// -1 for "not applicable" so index 0 stays unambiguous in traces. Seq and
// Step are stamped by the recorder (Seq monotonic per recorder, Step from
// the SetStep context); producers fill the rest.
type Event struct {
	Seq   uint64            `json:"seq"`
	Step  int               `json:"step"`
	Round int               `json:"round"`
	Phase string            `json:"phase,omitempty"`
	Shim  int               `json:"shim"`
	Kind  Kind              `json:"kind"`
	VM    int               `json:"vm"`
	Host  int               `json:"host"`
	Value float64           `json:"value"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Options configures a Recorder.
type Options struct {
	// Ring is the in-memory event buffer capacity; the ring keeps the most
	// recent Ring events. Zero means the default (4096); negative is an
	// error.
	Ring int
	// Sinks receive every recorded event in sequence order, under the
	// recorder's lock (sinks need no locking of their own).
	Sinks []Sink
}

// Validate reports whether the options are usable. Negative values are
// errors; zero values mean "use the default".
func (o Options) Validate() error {
	if o.Ring < 0 {
		return fmt.Errorf("obs: Ring must be >= 0 (0 = default), got %d", o.Ring)
	}
	return nil
}

func (o Options) withDefaults() Options {
	if o.Ring == 0 {
		o.Ring = 4096
	}
	return o
}

// KindStats is a snapshot of one kind's streaming counter.
type KindStats struct {
	Count uint64
	// Value summarizes the Event.Value distribution for the kind.
	Value metrics.Summary
	// P95 is the P² estimate of the 95th percentile of Event.Value.
	P95 float64
}

type kindCounter struct {
	count   uint64
	summary metrics.Summary
	p95     *metrics.Quantile
}

// Recorder is the event collector. It is safe for concurrent use; a nil
// *Recorder is a no-op on every method.
type Recorder struct {
	mu       sync.Mutex
	seq      uint64
	step     int
	ring     []Event
	head     int
	full     bool
	counters map[Kind]*kindCounter
	sinks    []Sink
	sinkErr  error
}

// New builds a recorder.
func New(opts Options) (*Recorder, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	return &Recorder{
		ring:     make([]Event, 0, opts.Ring),
		counters: make(map[Kind]*kindCounter),
		sinks:    append([]Sink(nil), opts.Sinks...),
	}, nil
}

// Enabled reports whether recording is active. Producers use it to skip
// building attribute maps on the disabled path.
func (r *Recorder) Enabled() bool { return r != nil }

// SetStep sets the step number stamped on every subsequently recorded
// event (the runtime calls this once per collection period; standalone
// protocols leave it at 0).
func (r *Recorder) SetStep(step int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.step = step
	r.mu.Unlock()
}

// Record stamps the event with the next sequence number and the current
// step context, stores it in the ring, folds it into the per-kind
// counters, and emits it to every sink.
func (r *Recorder) Record(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.seq++
	e.Seq = r.seq
	e.Step = r.step
	if cap(r.ring) > 0 {
		if len(r.ring) < cap(r.ring) {
			r.ring = append(r.ring, e)
		} else {
			r.ring[r.head] = e
			r.head++
			if r.head == cap(r.ring) {
				r.head = 0
				r.full = true
			} else if !r.full && r.head == len(r.ring) {
				r.full = true
			}
		}
	}
	c := r.counters[e.Kind]
	if c == nil {
		q, _ := metrics.NewQuantile(0.95) // 0.95 is always valid
		c = &kindCounter{p95: q}
		r.counters[e.Kind] = c
	}
	c.count++
	c.summary.Observe(e.Value)
	c.p95.Observe(e.Value)
	for _, s := range r.sinks {
		if err := s.Emit(e); err != nil && r.sinkErr == nil {
			r.sinkErr = err
		}
	}
	r.mu.Unlock()
}

// AddSink attaches a sink; subsequent events are emitted to it.
func (r *Recorder) AddSink(s Sink) {
	if r == nil || s == nil {
		return
	}
	r.mu.Lock()
	r.sinks = append(r.sinks, s)
	r.mu.Unlock()
}

// RemoveSink detaches a previously attached sink, comparing by interface
// identity, and reports whether it was found. Events recorded after
// RemoveSink returns are not emitted to the sink; an emission already in
// flight on another goroutine completes first (both run under the
// recorder's lock). Sinks of non-comparable dynamic type (e.g. Func)
// cannot be removed — wrap them in a pointer type to detach later.
func (r *Recorder) RemoveSink(s Sink) bool {
	if r == nil || s == nil {
		return false
	}
	t := reflect.TypeOf(s)
	if !t.Comparable() {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, have := range r.sinks {
		if reflect.TypeOf(have) == t && have == s {
			r.sinks = append(r.sinks[:i], r.sinks[i+1:]...)
			return true
		}
	}
	return false
}

// Err returns the first sink error, if any.
func (r *Recorder) Err() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sinkErr
}

// Seq returns the number of events recorded so far (the last assigned
// sequence number).
func (r *Recorder) Seq() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Events returns a snapshot of the ring contents in sequence order (the
// most recent Ring events).
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Event(nil), r.ring[:len(r.ring)]...)
	}
	out := make([]Event, 0, cap(r.ring))
	out = append(out, r.ring[r.head:]...)
	out = append(out, r.ring[:r.head]...)
	return out
}

// Count returns how many events of the kind were recorded.
func (r *Recorder) Count(kind Kind) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c := r.counters[kind]; c != nil {
		return c.count
	}
	return 0
}

// Stats returns the kind's counter snapshot (zero-valued when the kind
// was never recorded).
func (r *Recorder) Stats(kind Kind) KindStats {
	if r == nil {
		return KindStats{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[kind]
	if c == nil {
		return KindStats{}
	}
	return KindStats{Count: c.count, Value: c.summary, P95: c.p95.Value()}
}

// Kinds returns the kinds recorded so far, sorted.
func (r *Recorder) Kinds() []Kind {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Kind, 0, len(r.counters))
	for k := range r.counters {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
