package obs

import (
	"sync"
	"testing"

	"sheriff/internal/pool"
)

// TestRecorderConcurrentHammer drives one recorder from the shared worker
// pool — the same pool the runtime's parallel phases run on — while
// readers snapshot the ring and counters. Run under -race (the CI race
// job covers internal/obs).
func TestRecorderConcurrentHammer(t *testing.T) {
	r, err := New(Options{Ring: 256})
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 16, 500
	var wg sync.WaitGroup
	wg.Add(1)
	stop := make(chan struct{})
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = r.Events()
			_ = r.Stats(KindSend)
			_ = r.Kinds()
		}
	}()
	pool.Shared().ForEach(writers, func(i int) {
		for j := 0; j < perWriter; j++ {
			r.Record(Event{Kind: KindSend, Shim: i, Value: float64(j)})
		}
	})
	close(stop)
	wg.Wait()

	if got := r.Count(KindSend); got != writers*perWriter {
		t.Fatalf("count = %d, want %d", got, writers*perWriter)
	}
	if r.Seq() != writers*perWriter {
		t.Fatalf("seq = %d, want %d", r.Seq(), writers*perWriter)
	}
	// Sequence numbers in the ring must be strictly increasing: the ring
	// holds a consistent suffix of the event stream.
	ev := r.Events()
	if len(ev) != 256 {
		t.Fatalf("ring = %d events, want 256", len(ev))
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].Seq != ev[i-1].Seq+1 {
			t.Fatalf("ring seq gap at %d: %d -> %d", i, ev[i-1].Seq, ev[i].Seq)
		}
	}
}
