package centralized

import (
	"testing"

	"sheriff/internal/cost"
	"sheriff/internal/dcn"
	"sheriff/internal/migrate"
	"sheriff/internal/topology"
)

func newFixture(t *testing.T, pods int) (*dcn.Cluster, *cost.Model) {
	t.Helper()
	ft, err := topology.NewFatTree(topology.FatTreeConfig{Pods: pods})
	if err != nil {
		t.Fatal(err)
	}
	c, err := dcn.NewCluster(ft.Graph, dcn.Config{HostsPerRack: 2, HostCapacity: 100, ToRCapacity: 200})
	if err != nil {
		t.Fatal(err)
	}
	m, err := cost.New(c, cost.PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	return c, m
}

func TestMigrateUsesGlobalPool(t *testing.T) {
	c, m := newFixture(t, 4)
	vm, err := c.AddVM(c.Racks[0].Hosts[0], 50, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	mgr := New(c, m)
	res, err := mgr.Migrate([]*dcn.VM{vm})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Migrations) != 1 {
		t.Fatalf("migrations = %d", len(res.Migrations))
	}
	// Search space covers every host.
	if res.SearchSpace != len(c.Hosts()) {
		t.Fatalf("search space = %d, want %d", res.SearchSpace, len(c.Hosts()))
	}
}

func TestCentralizedCostAtMostRegional(t *testing.T) {
	// The centralized manager sees a superset of destinations, so for a
	// single VM its chosen cost can never exceed the regional shim's.
	cC, mC := newFixture(t, 4)
	cR, mR := newFixture(t, 4)

	vmC, err := cC.AddVM(cC.Racks[0].Hosts[0], 50, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	vmR, err := cR.AddVM(cR.Racks[0].Hosts[0], 50, 1, false)
	if err != nil {
		t.Fatal(err)
	}

	resC, err := New(cC, mC).Migrate([]*dcn.VM{vmC})
	if err != nil {
		t.Fatal(err)
	}
	shim, err := migrate.NewShim(cR, mR, cR.Racks[0], migrate.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var regionalHosts []*dcn.Host
	for _, r := range shim.NeighborRacks() {
		regionalHosts = append(regionalHosts, r.Hosts...)
	}
	resR, err := migrate.VMMigration(cR, mR, []*dcn.VM{vmR}, regionalHosts)
	if err != nil {
		t.Fatal(err)
	}
	if resC.TotalCost > resR.TotalCost+1e-9 {
		t.Fatalf("centralized %v > regional %v", resC.TotalCost, resR.TotalCost)
	}
	if resC.SearchSpace <= resR.SearchSpace {
		t.Fatalf("centralized search space %d should exceed regional %d", resC.SearchSpace, resR.SearchSpace)
	}
}

func TestPlanDestinationsExactVsLocalSearch(t *testing.T) {
	c, m := newFixture(t, 4)
	mgr := New(c, m)
	sources := []int{0, 2, 5}
	exact, err := mgr.PlanDestinations(sources, 2, 1, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := mgr.PlanDestinations(sources, 2, 1, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(exact.Open) != 2 || len(ls.Open) != 2 {
		t.Fatalf("open sizes: %d / %d", len(exact.Open), len(ls.Open))
	}
	if ls.Cost < exact.Cost-1e-9 {
		t.Fatalf("local search beat the exact optimum: %v < %v", ls.Cost, exact.Cost)
	}
	if ls.Cost > 5*exact.Cost+1e-9 {
		t.Fatalf("local search broke the 3+2/1 guarantee: %v > 5×%v", ls.Cost, exact.Cost)
	}
}

func TestPlanDestinationsValidation(t *testing.T) {
	c, m := newFixture(t, 4)
	mgr := New(c, m)
	if _, err := mgr.PlanDestinations([]int{0}, 0, 1, true, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := mgr.PlanDestinations([]int{0}, 99, 1, true, 1); err == nil {
		t.Error("k>racks accepted")
	}
}

func TestPlanDestinationsOptsMatchesLegacy(t *testing.T) {
	c, m := newFixture(t, 4)
	mgr := New(c, m)
	sources := []int{0, 2, 5, 6}
	legacy, err := mgr.PlanDestinations(sources, 2, 1, false, 3)
	if err != nil {
		t.Fatal(err)
	}
	opts, err := mgr.PlanDestinationsOpts(sources, PlanOptions{K: 2, P: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Cost != opts.Cost || len(legacy.Open) != len(opts.Open) {
		t.Fatalf("legacy %v/%v vs opts %v/%v", legacy.Cost, legacy.Open, opts.Cost, opts.Open)
	}
	for i := range legacy.Open {
		if legacy.Open[i] != opts.Open[i] {
			t.Fatalf("open sets diverge: %v vs %v", legacy.Open, opts.Open)
		}
	}
	bnb, err := mgr.PlanDestinationsOpts(sources, PlanOptions{K: 2, Exact: true})
	if err != nil {
		t.Fatal(err)
	}
	if opts.Cost < bnb.Cost-1e-9 {
		t.Fatalf("local search %v beat branch-and-bound optimum %v", opts.Cost, bnb.Cost)
	}
}
