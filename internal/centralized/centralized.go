// Package centralized implements the global (centralized) optimal manager
// that the paper compares Sheriff against in Figs. 11–14: a single
// controller that sees every host in the DCN and solves the same
// VM-to-destination matching over the global candidate pool. Its search
// space is |F| × (all hosts), against Sheriff's |F| × (regional hosts);
// its migration cost is a lower bound on any regional scheme using the
// same matching machinery.
//
// It also exposes the Sec. V.A k-median view: choosing the m destination
// ToRs that minimize total rack-pair connection cost, solved exactly for
// small instances and by Local Search otherwise.
package centralized

import (
	"fmt"

	"sheriff/internal/cost"
	"sheriff/internal/dcn"
	"sheriff/internal/kmedian"
	"sheriff/internal/migrate"
	"sheriff/internal/pool"
)

// Manager is the centralized controller.
type Manager struct {
	cluster *dcn.Cluster
	model   *cost.Model
}

// New builds a centralized manager over the cluster.
func New(c *dcn.Cluster, m *cost.Model) *Manager {
	return &Manager{cluster: c, model: m}
}

// Migrate places every candidate VM using the global host pool. The
// returned result's SearchSpace reflects the full |F|×|hosts| scan.
func (m *Manager) Migrate(f []*dcn.VM) (*migrate.MigrationResult, error) {
	return migrate.VMMigration(m.cluster, m.model, f, m.cluster.Hosts())
}

// MigrateOpts is Migrate with the full policy-carrying options: the
// centralized baseline can run the same placement policies, preemption,
// and fail-queue as the regional scheme, keeping the Figs. 11–14
// comparison apples-to-apples under any policy.
func (m *Manager) MigrateOpts(f []*dcn.VM, o migrate.MigrationOptions) (*migrate.MigrationResult, error) {
	return migrate.Migrate(m.cluster, m.model, f, m.cluster.Hosts(), o)
}

// PlanOptions tunes PlanDestinationsOpts.
type PlanOptions struct {
	K    int   // destination ToR count (required, 1..racks)
	P    int   // Alg. 5 swap size; default 1
	Seed int64 // local-search start seed
	// Exact switches to the branch-and-bound optimal solver (the Figs.
	// 11/13 "global optimal" reference). Feasible far beyond the seed's
	// enumerator, but still exponential in the worst case.
	Exact bool
	// MaxSwaps caps the local search's improving swaps; 0 = default.
	MaxSwaps int
	// Pool bounds the parallel swap scan; nil = the shared pool.
	Pool *pool.Pool
}

// PlanDestinations solves the Sec. V.A k-median reduction: given the
// racks that raised alerts (clients C) and all racks as facilities F,
// pick k destination ToRs minimizing total collapsed pair cost
// G(v_i, v_p) + C_r. exact=true computes the optimum by branch-and-bound;
// otherwise Alg. 5 Local Search with swap size p runs.
func (m *Manager) PlanDestinations(sourceRacks []int, k, p int, exact bool, seed int64) (*kmedian.Solution, error) {
	return m.PlanDestinationsOpts(sourceRacks, PlanOptions{K: k, P: p, Exact: exact, Seed: seed})
}

// PlanDestinationsOpts is PlanDestinations with the full option set of the
// incremental planning engine threaded through.
func (m *Manager) PlanDestinationsOpts(sourceRacks []int, o PlanOptions) (*kmedian.Solution, error) {
	racks := m.cluster.Racks
	if o.K < 1 || o.K > len(racks) {
		return nil, fmt.Errorf("centralized: k = %d out of range [1, %d]", o.K, len(racks))
	}
	facilities := make([]int, len(racks))
	for i := range racks {
		facilities[i] = i
	}
	inst := &kmedian.Instance{
		Cost:       m.model.RackCostMatrix(),
		Clients:    sourceRacks,
		Facilities: facilities,
		K:          o.K,
	}
	if o.Exact {
		return kmedian.Exact(inst)
	}
	return kmedian.LocalSearch(inst, kmedian.Options{
		P: o.P, Seed: o.Seed, MaxSwaps: o.MaxSwaps, Pool: o.Pool,
	})
}
