package cost

import (
	"errors"
	"math"
	"testing"

	"sheriff/internal/dcn"
	"sheriff/internal/topology"
)

func testCluster(t *testing.T) *dcn.Cluster {
	t.Helper()
	ft, err := topology.NewFatTree(topology.FatTreeConfig{Pods: 4})
	if err != nil {
		t.Fatal(err)
	}
	c, err := dcn.NewCluster(ft.Graph, dcn.Config{HostsPerRack: 2, HostCapacity: 100, ToRCapacity: 200})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func testModel(t *testing.T, c *dcn.Cluster) *Model {
	t.Helper()
	m, err := New(c, PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParamsValidate(t *testing.T) {
	p := PaperParams()
	if err := p.Validate(); err != nil {
		t.Fatalf("paper params invalid: %v", err)
	}
	p.Cr = -1
	if err := p.Validate(); err == nil {
		t.Error("negative Cr accepted")
	}
	p = PaperParams()
	p.RefSize = 0
	if err := p.Validate(); err == nil {
		t.Error("zero RefSize accepted")
	}
}

func TestSameRackTransmissionIsZero(t *testing.T) {
	c := testCluster(t)
	m := testModel(t, c)
	r := c.Racks[0]
	got, err := m.TransmissionCost(r, r, 10)
	if err != nil || got != 0 {
		t.Fatalf("same-rack transmission = %v, %v", got, err)
	}
}

func TestTransmissionCostSamePod(t *testing.T) {
	c := testCluster(t)
	m := testModel(t, c)
	// Racks 0 and 1 share pod 0: path ToR-agg-ToR, two edge links of
	// capacity 1 and full bandwidth 1. T(e) = size/1, P(e) = 1.
	got, err := m.TransmissionCost(c.Racks[0], c.Racks[1], 10)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * (10.0/1 + 1.0)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("transmission = %v, want %v", got, want)
	}
}

func TestTransmissionCostScalesWithSize(t *testing.T) {
	c := testCluster(t)
	m := testModel(t, c)
	small, err := m.TransmissionCost(c.Racks[0], c.Racks[1], 1)
	if err != nil {
		t.Fatal(err)
	}
	big, err := m.TransmissionCost(c.Racks[0], c.Racks[1], 20)
	if err != nil {
		t.Fatal(err)
	}
	if big <= small {
		t.Fatalf("bigger VM should cost more: %v vs %v", small, big)
	}
}

func TestTransmissionSymmetric(t *testing.T) {
	c := testCluster(t)
	m := testModel(t, c)
	for _, pair := range [][2]int{{0, 1}, {0, 3}, {2, 7}} {
		a, b := c.Racks[pair[0]], c.Racks[pair[1]]
		ab, err := m.TransmissionCost(a, b, 10)
		if err != nil {
			t.Fatal(err)
		}
		ba, err := m.TransmissionCost(b, a, 10)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ab-ba) > 1e-9 {
			t.Fatalf("asymmetric transmission %d<->%d: %v vs %v", pair[0], pair[1], ab, ba)
		}
	}
}

func TestBandwidthFloorBlocksPath(t *testing.T) {
	c := testCluster(t)
	p := PaperParams()
	p.BandwidthFloor = 0.5
	m, err := New(c, p)
	if err != nil {
		t.Fatal(err)
	}
	// Kill the bandwidth on every link of rack 0's ToR.
	nodeID := c.Racks[0].NodeID
	for _, e := range c.Graph.Edges(nodeID) {
		c.Graph.SetBandwidth(nodeID, e.To, 0.1)
	}
	m.Refresh()
	if _, err := m.TransmissionCost(c.Racks[0], c.Racks[1], 10); !errors.Is(err, ErrBandwidthBelowFloor) {
		t.Fatalf("want ErrBandwidthBelowFloor, got %v", err)
	}
}

func TestDependencyCostSignedByProximity(t *testing.T) {
	c := testCluster(t)
	m := testModel(t, c)
	// VM a in rack 0; its dependent peer in rack 3 (other pod).
	a, err := c.AddVM(c.Racks[0].Hosts[0], 10, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.AddVM(c.Racks[3].Hosts[0], 10, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	c.Deps.AddDependency(a.ID, b.ID)
	// Moving a from rack 0 to rack 2 (same pod as rack 3): closer to peer,
	// so the dependency term must be negative.
	closer := m.DependencyCost(a, c.Racks[0], c.Racks[2])
	if closer >= 0 {
		t.Fatalf("moving toward peer should be negative, got %v", closer)
	}
	// Moving a within the same rack costs nothing.
	if m.DependencyCost(a, c.Racks[0], c.Racks[0]) != 0 {
		t.Fatal("same-rack dependency cost should be 0")
	}
}

func TestDependencyCostNoPeers(t *testing.T) {
	c := testCluster(t)
	m := testModel(t, c)
	a, err := c.AddVM(c.Racks[0].Hosts[0], 10, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if m.DependencyCost(a, c.Racks[0], c.Racks[5]) != 0 {
		t.Fatal("VM with no dependencies should have zero dependency cost")
	}
}

func TestMigrationCostComposition(t *testing.T) {
	c := testCluster(t)
	m := testModel(t, c)
	vm, err := c.AddVM(c.Racks[0].Hosts[0], 10, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	dst := c.Racks[1].Hosts[0]
	got, err := m.Migration(vm, dst)
	if err != nil {
		t.Fatal(err)
	}
	trans, err := m.TransmissionCost(c.Racks[0], c.Racks[1], vm.Capacity)
	if err != nil {
		t.Fatal(err)
	}
	want := PaperParams().Cr + trans // no dependencies
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("Migration = %v, want %v", got, want)
	}
}

func TestMigrationSameHostFree(t *testing.T) {
	c := testCluster(t)
	m := testModel(t, c)
	vm, err := c.AddVM(c.Racks[0].Hosts[0], 10, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Migration(vm, vm.Host())
	if err != nil || got != 0 {
		t.Fatalf("same-host migration = %v, %v", got, err)
	}
}

func TestMigrationUnplacedVM(t *testing.T) {
	c := testCluster(t)
	m := testModel(t, c)
	vm := &dcn.VM{ID: 999, Capacity: 5}
	if _, err := m.Migration(vm, c.Racks[0].Hosts[0]); err == nil {
		t.Fatal("unplaced VM should error")
	}
}

func TestMigrationCrossPodCostsMore(t *testing.T) {
	c := testCluster(t)
	m := testModel(t, c)
	vm, err := c.AddVM(c.Racks[0].Hosts[0], 10, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	samePod, err := m.Migration(vm, c.Racks[1].Hosts[0])
	if err != nil {
		t.Fatal(err)
	}
	crossPod, err := m.Migration(vm, c.Racks[7].Hosts[0])
	if err != nil {
		t.Fatal(err)
	}
	if crossPod <= samePod {
		t.Fatalf("cross-pod %v should exceed same-pod %v", crossPod, samePod)
	}
}

func TestRackPairCostMatrix(t *testing.T) {
	c := testCluster(t)
	m := testModel(t, c)
	mat := m.RackCostMatrix()
	n := len(c.Racks)
	if len(mat) != n {
		t.Fatalf("matrix size %d", len(mat))
	}
	for i := 0; i < n; i++ {
		if mat[i][i] != 0 {
			t.Fatalf("diagonal not zero at %d", i)
		}
		for j := 0; j < n; j++ {
			if math.Abs(mat[i][j]-mat[j][i]) > 1e-9 {
				t.Fatalf("matrix asymmetric at %d,%d", i, j)
			}
			if i != j && mat[i][j] < PaperParams().Cr {
				t.Fatalf("off-diagonal below Cr at %d,%d: %v", i, j, mat[i][j])
			}
		}
	}
}

func TestRefreshPicksUpBandwidthChanges(t *testing.T) {
	c := testCluster(t)
	m := testModel(t, c)
	before, err := m.TransmissionCost(c.Racks[0], c.Racks[1], 10)
	if err != nil {
		t.Fatal(err)
	}
	// Halve bandwidth everywhere: transmission time doubles on each edge.
	for _, id := range append(c.Graph.Racks(), c.Graph.Switches()...) {
		for _, e := range c.Graph.Edges(id) {
			c.Graph.SetBandwidth(id, e.To, e.Capacity/2)
		}
	}
	m.Refresh()
	after, err := m.TransmissionCost(c.Racks[0], c.Racks[1], 10)
	if err != nil {
		t.Fatal(err)
	}
	if after <= before {
		t.Fatalf("cost should rise after bandwidth halves: %v -> %v", before, after)
	}
}
