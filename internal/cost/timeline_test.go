package cost

import (
	"math"
	"testing"
)

func TestStageString(t *testing.T) {
	want := map[Stage]string{
		Initialization:   "initialization",
		Reservation:      "reservation",
		IterativePreCopy: "iterative-pre-copy",
		StopAndCopy:      "stop-and-copy",
		Commitment:       "commitment",
		Activation:       "activation",
	}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), name)
		}
	}
	if Stage(99).String() == "" {
		t.Error("unknown stage should render")
	}
}

func TestMigrationTimelineCrossRack(t *testing.T) {
	c := testCluster(t)
	m := testModel(t, c)
	vm, err := c.AddVM(c.Racks[0].Hosts[0], 10, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	dst := c.Racks[1].Hosts[0]
	tl, err := m.MigrationTimeline(vm, dst, TimelineParams{})
	if err != nil {
		t.Fatal(err)
	}
	if tl.Rounds < 2 {
		t.Fatalf("pre-copy rounds = %d, want >= 2 with default dirty rate", tl.Rounds)
	}
	// Downtime (stop-and-copy) must be far shorter than the pre-copy
	// phase — the whole point of pre-copy live migration.
	if tl.Downtime >= tl.Durations[IterativePreCopy]/4 {
		t.Fatalf("downtime %v not small vs pre-copy %v", tl.Downtime, tl.Durations[IterativePreCopy])
	}
	if tl.Total() <= 0 {
		t.Fatal("non-positive total")
	}
	// Total = sum of stages.
	sum := 0.0
	for _, d := range tl.Durations {
		sum += d
	}
	if math.Abs(sum-tl.Total()) > 1e-12 {
		t.Fatal("Total does not match stage sum")
	}
}

func TestMigrationTimelineSameRackSkipsFabric(t *testing.T) {
	c := testCluster(t)
	m := testModel(t, c)
	vm, err := c.AddVM(c.Racks[0].Hosts[0], 10, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := m.MigrationTimeline(vm, c.Racks[0].Hosts[1], TimelineParams{})
	if err != nil {
		t.Fatal(err)
	}
	if tl.Rounds != 1 {
		t.Fatalf("intra-rack rounds = %d, want 1", tl.Rounds)
	}
}

func TestMigrationTimelineBiggerVMTakesLonger(t *testing.T) {
	c := testCluster(t)
	m := testModel(t, c)
	small, err := c.AddVM(c.Racks[0].Hosts[0], 5, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	big, err := c.AddVM(c.Racks[0].Hosts[1], 20, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	dst1 := c.Racks[1].Hosts[0]
	dst2 := c.Racks[1].Hosts[1]
	tlS, err := m.MigrationTimeline(small, dst1, TimelineParams{})
	if err != nil {
		t.Fatal(err)
	}
	tlB, err := m.MigrationTimeline(big, dst2, TimelineParams{})
	if err != nil {
		t.Fatal(err)
	}
	if tlB.Total() <= tlS.Total() {
		t.Fatalf("bigger VM total %v should exceed smaller %v", tlB.Total(), tlS.Total())
	}
}

func TestMigrationTimelineHigherDirtyRateMoreRounds(t *testing.T) {
	c := testCluster(t)
	m := testModel(t, c)
	vm, err := c.AddVM(c.Racks[0].Hosts[0], 10, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	dst := c.Racks[1].Hosts[0]
	low, err := m.MigrationTimeline(vm, dst, TimelineParams{DirtyRate: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	high, err := m.MigrationTimeline(vm, dst, TimelineParams{DirtyRate: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if high.Rounds <= low.Rounds {
		t.Fatalf("dirty rate 0.6 rounds %d should exceed 0.1 rounds %d", high.Rounds, low.Rounds)
	}
}

func TestMigrationTimelineMaxRoundsCap(t *testing.T) {
	c := testCluster(t)
	m := testModel(t, c)
	vm, err := c.AddVM(c.Racks[0].Hosts[0], 10, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := m.MigrationTimeline(vm, c.Racks[1].Hosts[0], TimelineParams{DirtyRate: 0.99, MaxRounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	if tl.Rounds != 3 {
		t.Fatalf("rounds = %d, want capped at 3", tl.Rounds)
	}
}

func TestMigrationTimelineValidation(t *testing.T) {
	c := testCluster(t)
	m := testModel(t, c)
	vm, err := c.AddVM(c.Racks[0].Hosts[0], 10, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.MigrationTimeline(vm, c.Racks[1].Hosts[0], TimelineParams{DirtyRate: 1.5}); err == nil {
		t.Error("DirtyRate >= 1 accepted")
	}
}

func TestMigrationTimelineUnplacedVM(t *testing.T) {
	c := testCluster(t)
	m := testModel(t, c)
	vm, err := c.AddVM(c.Racks[0].Hosts[0], 10, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	c.Remove(vm)
	if _, err := m.MigrationTimeline(vm, c.Racks[1].Hosts[0], TimelineParams{}); err == nil {
		t.Fatal("unplaced VM accepted")
	}
}
