package cost

import (
	"errors"
	"fmt"

	"sheriff/internal/dcn"
)

// Stage identifies one phase of the six-stage pre-copy live migration of
// Sec. III.C / Fig. 2 (after Clark et al., the paper's [17]).
type Stage int

const (
	// Initialization: target selected, block devices mirrored.
	Initialization Stage = iota
	// Reservation: container initialized on the target host.
	Reservation
	// IterativePreCopy: RAM sent, then dirty pages copied iteratively.
	IterativePreCopy
	// StopAndCopy: VM suspended for the final transfer round.
	StopAndCopy
	// Commitment: target confirms a consistent image.
	Commitment
	// Activation: VM resumes on the target.
	Activation
)

// String names the stage.
func (s Stage) String() string {
	switch s {
	case Initialization:
		return "initialization"
	case Reservation:
		return "reservation"
	case IterativePreCopy:
		return "iterative-pre-copy"
	case StopAndCopy:
		return "stop-and-copy"
	case Commitment:
		return "commitment"
	case Activation:
		return "activation"
	default:
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// Timeline is the per-stage schedule of one live migration, in abstract
// time units (size / bandwidth). The paper's t₁..t₄ map to:
// t₁ = Initialization+Reservation, t₂ = IterativePreCopy,
// t₃ = StopAndCopy (the ~60 ms downtime), t₄ = Commitment+Activation.
type Timeline struct {
	Durations [6]float64
	Rounds    int     // pre-copy iterations performed
	Downtime  float64 // the StopAndCopy duration (service interruption)
}

// Total returns the end-to-end migration time.
func (t *Timeline) Total() float64 {
	sum := 0.0
	for _, d := range t.Durations {
		sum += d
	}
	return sum
}

// TimelineParams tunes the pre-copy model.
type TimelineParams struct {
	// DirtyRate is the fraction of transferred state re-dirtied per unit
	// of transfer time (must be < 1 for convergence; default 0.2).
	DirtyRate float64
	// StopThreshold stops iterating when the residual dirty set is below
	// this fraction of the VM size (default 0.02).
	StopThreshold float64
	// MaxRounds caps the pre-copy iterations (default 8, after which the
	// residual transfers in stop-and-copy regardless).
	MaxRounds int
	// FixedOverhead is the duration of each of the four bookkeeping
	// stages (init, reservation, commitment, activation; default 0.5).
	FixedOverhead float64
}

func (p TimelineParams) withDefaults() TimelineParams {
	if p.DirtyRate == 0 {
		p.DirtyRate = 0.2
	}
	if p.StopThreshold == 0 {
		p.StopThreshold = 0.02
	}
	if p.MaxRounds == 0 {
		p.MaxRounds = 8
	}
	if p.FixedOverhead == 0 {
		p.FixedOverhead = 0.5
	}
	return p
}

// MigrationTimeline simulates the six-stage pre-copy schedule for moving
// vm to dst at the bottleneck bandwidth of the chosen path. It refines
// the scalar T(e) of Eqn. (1) into the stage structure of Fig. 2: round k
// of pre-copy transfers DirtyRate^k of the VM state, and stop-and-copy
// ships the final residual while the VM is suspended.
func (m *Model) MigrationTimeline(vm *dcn.VM, dst *dcn.Host, p TimelineParams) (*Timeline, error) {
	src := vm.Host()
	if src == nil {
		return nil, errors.New("cost: VM is not placed")
	}
	p = p.withDefaults()
	if p.DirtyRate >= 1 || p.DirtyRate < 0 {
		return nil, fmt.Errorf("cost: DirtyRate must be in [0,1), got %v", p.DirtyRate)
	}
	tl := &Timeline{}
	tl.Durations[Initialization] = p.FixedOverhead
	tl.Durations[Reservation] = p.FixedOverhead
	tl.Durations[Commitment] = p.FixedOverhead
	tl.Durations[Activation] = p.FixedOverhead

	if src == dst || src.Rack() == dst.Rack() {
		// Rack-internal move: the fabric is not involved; model the
		// transfer at unit bandwidth.
		tl.Durations[IterativePreCopy] = vm.Capacity
		tl.Durations[StopAndCopy] = vm.Capacity * p.StopThreshold
		tl.Rounds = 1
		tl.Downtime = tl.Durations[StopAndCopy]
		return tl, nil
	}
	bw, err := m.bottleneckBandwidth(src.Rack(), dst.Rack())
	if err != nil {
		return nil, err
	}
	remaining := vm.Capacity
	for tl.Rounds = 0; tl.Rounds < p.MaxRounds; {
		tl.Durations[IterativePreCopy] += remaining / bw
		tl.Rounds++
		remaining *= p.DirtyRate
		if remaining <= p.StopThreshold*vm.Capacity {
			break
		}
	}
	tl.Durations[StopAndCopy] = remaining / bw
	tl.Downtime = tl.Durations[StopAndCopy]
	return tl, nil
}

// bottleneckBandwidth returns the minimum available bandwidth along the
// cheapest path between two racks.
func (m *Model) bottleneckBandwidth(src, dst *dcn.Rack) (float64, error) {
	path := m.trans.Path(src.NodeID, dst.NodeID)
	if path == nil {
		return 0, ErrBandwidthBelowFloor
	}
	min := -1.0
	for i := 1; i < len(path); i++ {
		e, ok := m.cluster.Graph.EdgeBetween(path[i-1], path[i])
		if !ok {
			return 0, fmt.Errorf("cost: path uses missing edge %d-%d", path[i-1], path[i])
		}
		if e.Bandwidth <= 0 {
			return 0, ErrBandwidthBelowFloor
		}
		if min < 0 || e.Bandwidth < min {
			min = e.Bandwidth
		}
	}
	if min <= 0 {
		return 0, ErrBandwidthBelowFloor
	}
	return min, nil
}
