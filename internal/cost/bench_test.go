package cost

import (
	"testing"

	"sheriff/internal/dcn"
	"sheriff/internal/topology"
)

// BenchmarkModelRefresh measures the per-round table rebuild the runtime
// pays after every bandwidth change (runtime marks the model stale, the
// next query refreshes). fused is the production path: steady-state
// bandwidth-only refresh reusing warm tables and skipping the distance
// sweep; naive is the seed's two fresh map-backed sweeps. Record with
//
//	go test -run=^$ -bench ModelRefresh -benchtime=2x -benchmem ./internal/cost/
func BenchmarkModelRefresh(b *testing.B) {
	ft, err := topology.NewFatTree(topology.FatTreeConfig{Pods: 48})
	if err != nil {
		b.Fatal(err)
	}
	c, err := dcn.NewCluster(ft.Graph, dcn.Config{HostsPerRack: 1, HostCapacity: 100, ToRCapacity: 100})
	if err != nil {
		b.Fatal(err)
	}
	m, err := New(c, PaperParams())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("fused", func(b *testing.B) {
		m.Refresh() // warm tables
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Refresh()
		}
	})
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.refreshNaive()
		}
	})
}
