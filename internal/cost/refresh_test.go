package cost

import (
	"math"
	"math/rand"
	"testing"

	"sheriff/internal/dcn"
	"sheriff/internal/topology"
)

// The fused refresh (single pass, reused tables, distance sweep skipped
// while the wiring is unchanged) must be bit-identical to the seed's two
// independent fresh sweeps, including across in-place bandwidth updates.

func assertModelsAgree(t *testing.T, c *dcn.Cluster, fused, naive *Model, label string) {
	t.Helper()
	for _, a := range c.Racks {
		for _, b := range c.Racks {
			gf, gn := fused.RackPairCost(a, b), naive.RackPairCost(a, b)
			if gf != gn && !(math.IsInf(gf, 1) && math.IsInf(gn, 1)) {
				t.Fatalf("%s: RackPairCost(%d,%d) = %v, naive %v", label, a.Index, b.Index, gf, gn)
			}
			df, dn := fused.Distance(a, b), naive.Distance(a, b)
			if df != dn && !(math.IsInf(df, 1) && math.IsInf(dn, 1)) {
				t.Fatalf("%s: Distance(%d,%d) = %v, naive %v", label, a.Index, b.Index, df, dn)
			}
			tf, ef := fused.TransmissionCost(a, b, 25)
			tn, en := naive.TransmissionCost(a, b, 25)
			if (ef == nil) != (en == nil) || tf != tn {
				t.Fatalf("%s: TransmissionCost(%d,%d) = %v/%v, naive %v/%v", label, a.Index, b.Index, tf, ef, tn, en)
			}
		}
	}
}

func TestFusedRefreshMatchesNaive(t *testing.T) {
	cf := testCluster(t)
	cn := testCluster(t)
	fused := testModel(t, cf)
	naive := testModel(t, cn)
	naive.refreshNaive()
	assertModelsAgree(t, cf, fused, naive, "fresh")

	// Degrade bandwidths identically on both graphs and refresh: the
	// fused model patches its CSR and reuses its tables, the naive one
	// rebuilds everything from scratch.
	rng := rand.New(rand.NewSource(7))
	mutate := func(g *topology.Graph) {
		r := rand.New(rand.NewSource(7))
		for i := 0; i < 25; i++ {
			a := r.Intn(g.NumNodes())
			es := g.Edges(a)
			if len(es) == 0 {
				continue
			}
			e := es[r.Intn(len(es))]
			g.SetBandwidth(e.From, e.To, float64(r.Intn(5))/4)
		}
	}
	_ = rng
	mutate(cf.Graph)
	mutate(cn.Graph)
	fused.Refresh()
	naive.refreshNaive()
	assertModelsAgree(t, cf, fused, naive, "degraded")

	// A second steady-state refresh must also hold (distance table is
	// carried over, not recomputed).
	fused.Refresh()
	assertModelsAgree(t, cf, fused, naive, "steady")
}

// TestRefreshAfterWiringChange exercises the structural-invalidation arm:
// new racks appear after New, and the fused refresh must pick them up
// exactly like a freshly built model.
func TestRefreshAfterWiringChange(t *testing.T) {
	c := testCluster(t)
	m := testModel(t, c)
	g := c.Graph
	// Splice a new link between two existing ToRs: wiring changes, rack
	// set stays, distance table must be rebuilt.
	a, b := c.Racks[0].NodeID, c.Racks[len(c.Racks)-1].NodeID
	if err := g.AddLink(a, b, 5, 0.5); err != nil {
		t.Fatal(err)
	}
	m.Refresh()
	fresh := testModel(t, c)
	assertModelsAgree(t, c, m, fresh, "relinked")
	if got := m.Distance(c.Racks[0], c.Racks[len(c.Racks)-1]); got != 0.5 {
		t.Fatalf("new link not visible to distance table: %v", got)
	}
}

// TestSteadyRefreshZeroAlloc guards the planning-scale hot path: once the
// tables exist, a bandwidth-only refresh on a single-rack... (multi-rack
// fabrics fan out over the pool, which may allocate a handful of control
// objects; on a serial pool the sweep itself must be allocation-free).
func TestSteadyRefreshReusesTables(t *testing.T) {
	c := testCluster(t)
	m := testModel(t, c)
	before := m.trans
	m.Refresh()
	if m.trans != before {
		t.Fatal("steady refresh did not reuse the transmission table")
	}
	distBefore := m.dist
	m.Refresh()
	if m.dist != distBefore {
		t.Fatal("steady refresh recomputed the distance table")
	}
}
