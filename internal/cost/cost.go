// Package cost implements the VM migration cost function of the paper's
// Sec. III.C (Eqn. 1):
//
//	Cost(v_i, v_p) = C_r + C_d·D(e)·χ_ip + Σ_{e ∈ P(v_i,v_p)} (δ·T(e) + η·P(e))
//
// where C_r is the fixed computing cost of the six-stage pre-copy live
// migration (initialization, reservation, commitment, activation — Fig. 2;
// downtime ≈ 60 ms is ignored as the paper does), T(e) = size/B(e) is the
// transmission time, P(e) = B(e)/C(e) the bandwidth utilization rate, and
// the dependency term charges C_d per unit of distance change between the
// VM and its dependent peers in G_d.
//
// Following Sec. V.A.2, transmission cost is collapsed from a path
// function g(v_i, v_p, e_ip) into a pair function G(v_i, v_p) by running
// Floyd–Warshall with the per-edge transmission cost, so the cost between
// two racks never depends on which path is taken: the cheapest one is
// always used.
package cost

import (
	"errors"
	"fmt"

	"sheriff/internal/dcn"
	"sheriff/internal/pool"
	"sheriff/internal/topology"
)

// Params holds the constants of Eqn. (1). The paper's simulation settings
// (Sec. VI.B) are C_r = 100, δ = η = 1, C_d = 1.
type Params struct {
	Cr             float64 // computing cost of one live migration
	Cd             float64 // unit dependency cost per distance in G_d
	Delta          float64 // δ: weight of transmission time T(e)
	Eta            float64 // η: weight of utilization rate P(e)
	BandwidthFloor float64 // B_t: minimum usable available bandwidth
	RefSize        float64 // reference VM size for the pair-cost table
}

// PaperParams returns the simulation constants of Sec. VI.B.
func PaperParams() Params {
	return Params{Cr: 100, Cd: 1, Delta: 1, Eta: 1, BandwidthFloor: 0, RefSize: 10}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Cr < 0 || p.Cd < 0 || p.Delta < 0 || p.Eta < 0 {
		return fmt.Errorf("cost: negative parameter in %+v", p)
	}
	if p.RefSize <= 0 {
		return fmt.Errorf("cost: RefSize must be > 0, got %v", p.RefSize)
	}
	return nil
}

// ErrBandwidthBelowFloor is returned when every path to the destination
// crosses a link with B(e) < B_t (the constraint "B(e) must be greater
// than a threshold value B_t").
var ErrBandwidthBelowFloor = errors.New("cost: no path with bandwidth above threshold")

// Model evaluates migration costs over one cluster. Construct with New;
// call Refresh after changing link bandwidths.
type Model struct {
	params  Params
	cluster *dcn.Cluster

	trans *topology.MultiSource // Σ (δT+ηP) from every rack, cheapest path
	dist  *topology.MultiSource // Σ D(e): physical distance from every rack

	racks     []int             // cached rack sources, rebuilt on wiring change
	transCost topology.EdgeCost // per-edge δT+ηP, built once from params
	structVer uint64            // Graph.StructVersion behind racks and dist
}

// New builds a cost model, computing rack-sourced shortest-path tables.
func New(c *dcn.Cluster, p Params) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := &Model{params: p, cluster: c}
	m.transCost = func(e topology.Edge) float64 {
		if e.Bandwidth <= 0 || e.Bandwidth < p.BandwidthFloor {
			return topology.Inf
		}
		t := p.RefSize / e.Bandwidth // T(e) for the reference size
		u := e.Bandwidth / e.Capacity
		return p.Delta*t + p.Eta*u
	}
	m.Refresh()
	return m, nil
}

// NewDeferred builds a cost model without computing the rack-sourced
// shortest-path tables: construction is O(1) instead of |racks| Dijkstra
// sweeps over dense per-source tables. The tables are built by the first
// Refresh — which the runtime's management phase already issues before any
// shim consults the model — or lazily by the first cost query. On a
// 5,000-rack fabric the eager tables cost hundreds of MB and tens of
// seconds; a scale run that never raises an alert should pay neither.
func NewDeferred(c *dcn.Cluster, p Params) (*Model, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := &Model{params: p, cluster: c}
	m.transCost = func(e topology.Edge) float64 {
		if e.Bandwidth <= 0 || e.Bandwidth < p.BandwidthFloor {
			return topology.Inf
		}
		t := p.RefSize / e.Bandwidth
		u := e.Bandwidth / e.Capacity
		return p.Delta*t + p.Eta*u
	}
	return m, nil
}

// ensure makes the tables usable for a deferred model queried before its
// first Refresh.
func (m *Model) ensure() {
	if m.trans == nil {
		m.Refresh()
	}
}

// Refresh recomputes the shortest-path tables from current link state.
// Only rack nodes are sources — Eqn. (1) is evaluated between delegation
// nodes, so per-rack Dijkstra replaces the paper's Floyd–Warshall with
// identical results at far lower cost on large fabrics.
//
// The refresh is fused: when the wiring changed (or on first build), the
// transmission and distance metrics run as one pass over the graph's CSR
// view — both edge-cost vectors materialized in a single edge scan, both
// sweeps per source back-to-back on the same hot scratch, one pool
// fan-out. In steady state only bandwidths change, and physical distance
// does not depend on them, so the distance table is carried over
// untouched and Refresh pays for the transmission sweep alone, reusing
// the previous tables (allocation-free after warmup).
func (m *Model) Refresh() {
	g := m.cluster.Graph
	if m.trans == nil || g.StructVersion() != m.structVer {
		m.structVer = g.StructVersion()
		m.racks = g.Racks()
		m.trans, m.dist = topology.DijkstraPairInto(g, m.racks, m.transCost, topology.DistanceCost, m.trans, m.dist)
		return
	}
	m.trans = topology.DijkstraFromInto(g, m.racks, m.transCost, m.trans)
}

// refreshNaive is the seed's Refresh, kept as the "before" side of
// BENCH_route.json and as ground truth for the fused-refresh equivalence
// test: two independent full sweeps with fresh map-backed tables, run
// concurrently on the shared pool.
func (m *Model) refreshNaive() {
	racks := m.cluster.Graph.Racks()
	var trans, dist *topology.MultiSource
	pool.Shared().Run(
		func() {
			trans = topology.DijkstraFrom(m.cluster.Graph, racks, m.transCost)
		},
		func() {
			dist = topology.DijkstraFrom(m.cluster.Graph, racks, topology.DistanceCost)
		},
	)
	m.trans, m.dist = trans, dist
	m.racks = racks
	m.structVer = m.cluster.Graph.StructVersion()
}

// Params returns the model constants.
func (m *Model) Params() Params { return m.params }

// TransmissionCost returns Σ_{e∈P}(δ·T(e) + η·P(e)) along the cheapest
// path between two racks for a VM of the given size. The path is the one
// minimizing the reference-size cost; per-edge terms are re-evaluated at
// the actual size. Returns ErrBandwidthBelowFloor when no feasible path
// exists.
func (m *Model) TransmissionCost(src, dst *dcn.Rack, size float64) (float64, error) {
	m.ensure()
	if src == dst {
		return 0, nil
	}
	path := m.trans.Path(src.NodeID, dst.NodeID)
	if path == nil {
		return 0, ErrBandwidthBelowFloor
	}
	total := 0.0
	for i := 1; i < len(path); i++ {
		e, ok := m.cluster.Graph.EdgeBetween(path[i-1], path[i])
		if !ok {
			return 0, fmt.Errorf("cost: path uses missing edge %d-%d", path[i-1], path[i])
		}
		if e.Bandwidth <= 0 || e.Bandwidth < m.params.BandwidthFloor {
			return 0, ErrBandwidthBelowFloor
		}
		total += m.params.Delta*(size/e.Bandwidth) + m.params.Eta*(e.Bandwidth/e.Capacity)
	}
	return total, nil
}

// Distance returns the physical-distance metric Σ D(e) between two racks.
func (m *Model) Distance(a, b *dcn.Rack) float64 {
	m.ensure()
	return m.dist.Dist(a.NodeID, b.NodeID)
}

// DependencyCost returns C_d times the net change in distance between the
// VM and the racks of its dependent peers if it moved from src to dst —
// the realization of the (Σ_{e∈G_r[N_d(v_i)]}D(e) − Σ_{e∈G_r[N_d(v_p)]}D(e))·C_d
// term of Sec. III.C. Moving toward peers yields a negative contribution.
func (m *Model) DependencyCost(vm *dcn.VM, src, dst *dcn.Rack) float64 {
	m.ensure()
	if src == dst {
		return 0
	}
	total := 0.0
	for _, idx := range m.cluster.Deps.PeerRacks(m.cluster, vm.ID) {
		peer := m.cluster.Racks[idx]
		total += m.dist.Dist(dst.NodeID, peer.NodeID) - m.dist.Dist(src.NodeID, peer.NodeID)
	}
	return m.params.Cd * total
}

// Migration returns the full Eqn. (1) cost of migrating vm to the
// destination host: C_r + dependency cost + transmission cost. Migrating
// within the same host costs zero.
func (m *Model) Migration(vm *dcn.VM, dst *dcn.Host) (float64, error) {
	srcHost := vm.Host()
	if srcHost == nil {
		return 0, errors.New("cost: VM is not placed")
	}
	if srcHost == dst {
		return 0, nil
	}
	src, dstRack := srcHost.Rack(), dst.Rack()
	trans, err := m.TransmissionCost(src, dstRack, vm.Capacity)
	if err != nil {
		return 0, err
	}
	return m.params.Cr + m.DependencyCost(vm, src, dstRack) + trans, nil
}

// RackPairCost returns the collapsed pair cost G(v_i, v_p) + C_r for a
// reference-size VM — the inter-rack metric handed to the k-median
// reduction of Sec. V.A. Same-rack cost is 0.
func (m *Model) RackPairCost(a, b *dcn.Rack) float64 {
	m.ensure()
	if a == b {
		return 0
	}
	d := m.trans.Dist(a.NodeID, b.NodeID)
	if d == topology.Inf {
		return topology.Inf
	}
	return m.params.Cr + d
}

// RackCostMatrix materializes the full rack-pair cost matrix, indexed by
// rack Index. Used by the k-median experiments.
func (m *Model) RackCostMatrix() [][]float64 {
	racks := m.cluster.Racks
	out := make([][]float64, len(racks))
	for i, a := range racks {
		out[i] = make([]float64, len(racks))
		for j, b := range racks {
			out[i][j] = m.RackPairCost(a, b)
		}
	}
	return out
}
