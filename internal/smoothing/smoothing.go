// Package smoothing implements the exponential-smoothing family — simple
// exponential smoothing (SES), Holt's linear trend, and additive
// Holt–Winters — as a third forecaster family beside ARIMA and NARNET.
// These are the classic low-cost baselines for workload prediction: a
// shim that cannot afford per-VM ARIMA refits (the situation the paper's
// per-period collection loop creates) can run Holt–Winters at a few
// floating-point operations per observation.
//
// All models satisfy the same ForecastFrom contract as the other
// predictor families, so they slot into the dynamic selection pool.
package smoothing

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"sheriff/internal/timeseries"
)

// Method identifies a smoothing family.
type Method int

const (
	// SES: level only.
	SES Method = iota
	// Holt: level + additive trend.
	Holt
	// HoltWinters: level + trend + additive seasonality.
	HoltWinters
)

// String names the method.
func (m Method) String() string {
	switch m {
	case SES:
		return "ses"
	case Holt:
		return "holt"
	case HoltWinters:
		return "holt-winters"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Config selects the method and its smoothing constants. Zero constants
// are optimized by grid search at fit time.
type Config struct {
	Method Method
	Period int     // season length (HoltWinters only)
	Alpha  float64 // level constant in (0,1); 0 = optimize
	Beta   float64 // trend constant in (0,1); 0 = optimize
	Gamma  float64 // seasonal constant in (0,1); 0 = optimize
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	check := func(name string, v float64) error {
		if v < 0 || v >= 1 {
			return fmt.Errorf("smoothing: %s must be in [0,1), got %v", name, v)
		}
		return nil
	}
	if err := check("Alpha", c.Alpha); err != nil {
		return err
	}
	if err := check("Beta", c.Beta); err != nil {
		return err
	}
	if err := check("Gamma", c.Gamma); err != nil {
		return err
	}
	if c.Method == HoltWinters && c.Period < 2 {
		return fmt.Errorf("smoothing: Holt-Winters requires Period >= 2, got %d", c.Period)
	}
	return nil
}

// Model is a fitted smoothing model.
type Model struct {
	Config Config
	SSE    float64 // in-sample one-step sum of squared errors

	history *timeseries.Series

	mu sync.Mutex
	fc *smoothState // incremental smoothing state (see ForecastFrom)
}

// smoothState is the O(1)-per-observation smoothing context cached
// between ForecastFrom calls on the same append-only history: level,
// trend, and the seasonal offsets fully determine both the forecast and
// the continuation of the recursion, so appending k observations costs
// O(k) instead of the O(n) re-smoothing pass. The continuation is
// bit-exact with a cold pass (exponential smoothing is Markov in exactly
// this state).
type smoothState struct {
	src    *timeseries.Series
	n      int     // observations folded into the state
	last   float64 // src.At(n-1), to detect non-append mutation
	level  float64
	trend  float64
	season []float64 // length Period (HoltWinters only)
}

// minLen returns the minimum series length for the method.
func (c Config) minLen() int {
	switch c.Method {
	case HoltWinters:
		return 2*c.Period + 2
	case Holt:
		return 4
	default:
		return 2
	}
}

// Fit selects any unspecified smoothing constants by grid search over the
// in-sample one-step SSE and returns the fitted model.
func Fit(s *timeseries.Series, cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if s.Len() < cfg.minLen() {
		return nil, fmt.Errorf("smoothing: series length %d too short for %s (need >= %d)",
			s.Len(), cfg.Method, cfg.minLen())
	}
	grid := []float64{0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9}
	pick := func(fixed float64) []float64 {
		if fixed > 0 {
			return []float64{fixed}
		}
		return grid
	}
	alphas := pick(cfg.Alpha)
	betas := []float64{0}
	gammas := []float64{0}
	if cfg.Method != SES {
		betas = pick(cfg.Beta)
	}
	if cfg.Method == HoltWinters {
		gammas = pick(cfg.Gamma)
	}
	best := math.Inf(1)
	var bestCfg Config
	for _, a := range alphas {
		for _, b := range betas {
			for _, g := range gammas {
				c := cfg
				c.Alpha, c.Beta, c.Gamma = a, b, g
				sse, err := run(s, c, 0, nil)
				if err != nil {
					continue
				}
				if sse < best {
					best = sse
					bestCfg = c
				}
			}
		}
	}
	if math.IsInf(best, 1) {
		return nil, errors.New("smoothing: no parameter combination fit the series")
	}
	return &Model{Config: bestCfg, SSE: best, history: s.Clone()}, nil
}

// run smooths through the series with the given constants, returning the
// one-step SSE; if h > 0 and out != nil, it also writes the h-step
// forecasts from the series end into out.
func run(s *timeseries.Series, cfg Config, h int, out []float64) (float64, error) {
	n := s.Len()
	switch cfg.Method {
	case SES:
		level := s.At(0)
		sse := 0.0
		for t := 1; t < n; t++ {
			e := s.At(t) - level
			sse += e * e
			level += cfg.Alpha * e
		}
		for k := 0; k < h; k++ {
			out[k] = level
		}
		return sse, nil

	case Holt:
		level := s.At(1)
		trend := s.At(1) - s.At(0)
		sse := 0.0
		for t := 2; t < n; t++ {
			pred := level + trend
			e := s.At(t) - pred
			sse += e * e
			newLevel := cfg.Alpha*s.At(t) + (1-cfg.Alpha)*(level+trend)
			trend = cfg.Beta*(newLevel-level) + (1-cfg.Beta)*trend
			level = newLevel
		}
		for k := 0; k < h; k++ {
			out[k] = level + trend*float64(k+1)
		}
		return sse, nil

	case HoltWinters:
		p := cfg.Period
		if n < 2*p {
			return 0, fmt.Errorf("smoothing: need >= %d points for period %d", 2*p, p)
		}
		// Initialization: first-season mean as level, cross-season slope
		// as trend, first-season offsets as seasonality.
		level := 0.0
		for t := 0; t < p; t++ {
			level += s.At(t)
		}
		level /= float64(p)
		second := 0.0
		for t := p; t < 2*p; t++ {
			second += s.At(t)
		}
		second /= float64(p)
		trend := (second - level) / float64(p)
		season := make([]float64, p)
		for t := 0; t < p; t++ {
			season[t] = s.At(t) - level
		}
		sse := 0.0
		for t := p; t < n; t++ {
			si := t % p
			pred := level + trend + season[si]
			e := s.At(t) - pred
			sse += e * e
			newLevel := cfg.Alpha*(s.At(t)-season[si]) + (1-cfg.Alpha)*(level+trend)
			trend = cfg.Beta*(newLevel-level) + (1-cfg.Beta)*trend
			season[si] = cfg.Gamma*(s.At(t)-newLevel) + (1-cfg.Gamma)*season[si]
			level = newLevel
		}
		for k := 0; k < h; k++ {
			out[k] = level + trend*float64(k+1) + season[(n+k)%p]
		}
		return sse, nil

	default:
		return 0, fmt.Errorf("smoothing: unknown method %v", cfg.Method)
	}
}

// Forecast returns h-step forecasts from the training series end.
func (m *Model) Forecast(h int) ([]float64, error) {
	return m.ForecastFrom(m.history, h)
}

// ForecastFrom smooths through the history with the fitted constants and
// extrapolates h steps — the predictor-pool contract.
//
// Repeated calls with the same *Series value hit a suffix-aware fast
// path: when the history has only grown since the previous call, the
// cached level/trend/season state is advanced over the new suffix in
// O(new points) instead of re-smoothing the whole series. Histories that
// shrank or were mutated in place fall back to a full pass.
func (m *Model) ForecastFrom(history *timeseries.Series, h int) ([]float64, error) {
	if h <= 0 {
		return nil, errors.New("smoothing: forecast horizon must be positive")
	}
	if history.Len() < m.Config.minLen() {
		return nil, fmt.Errorf("smoothing: history length %d too short for %s", history.Len(), m.Config.Method)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.fc
	if st == nil || st.src != history || st.n > history.Len() ||
		history.At(st.n-1) != st.last {
		var err error
		if st, err = m.initState(history); err != nil {
			return nil, err
		}
		m.fc = st
	}
	m.advanceState(st, history)
	return m.forecastState(st, history.Len(), h), nil
}

// initState seeds the smoothing recursion exactly as run does: SES starts
// from the first observation, Holt from the first two, Holt–Winters from
// the first two seasons.
func (m *Model) initState(history *timeseries.Series) (*smoothState, error) {
	st := &smoothState{src: history}
	switch m.Config.Method {
	case SES:
		st.level = history.At(0)
		st.n = 1
	case Holt:
		st.level = history.At(1)
		st.trend = history.At(1) - history.At(0)
		st.n = 2
	case HoltWinters:
		p := m.Config.Period
		if history.Len() < 2*p {
			return nil, fmt.Errorf("smoothing: need >= %d points for period %d", 2*p, p)
		}
		level := 0.0
		for t := 0; t < p; t++ {
			level += history.At(t)
		}
		level /= float64(p)
		second := 0.0
		for t := p; t < 2*p; t++ {
			second += history.At(t)
		}
		second /= float64(p)
		st.level = level
		st.trend = (second - level) / float64(p)
		st.season = make([]float64, p)
		for t := 0; t < p; t++ {
			st.season[t] = history.At(t) - level
		}
		st.n = p
	default:
		return nil, fmt.Errorf("smoothing: unknown method %v", m.Config.Method)
	}
	st.last = history.At(st.n - 1)
	return st, nil
}

// advanceState folds observations [st.n, history.Len()) into the state,
// mirroring run's recursions step for step.
func (m *Model) advanceState(st *smoothState, history *timeseries.Series) {
	cfg := m.Config
	n := history.Len()
	switch cfg.Method {
	case SES:
		for t := st.n; t < n; t++ {
			st.level += cfg.Alpha * (history.At(t) - st.level)
		}
	case Holt:
		for t := st.n; t < n; t++ {
			newLevel := cfg.Alpha*history.At(t) + (1-cfg.Alpha)*(st.level+st.trend)
			st.trend = cfg.Beta*(newLevel-st.level) + (1-cfg.Beta)*st.trend
			st.level = newLevel
		}
	case HoltWinters:
		p := cfg.Period
		for t := st.n; t < n; t++ {
			si := t % p
			newLevel := cfg.Alpha*(history.At(t)-st.season[si]) + (1-cfg.Alpha)*(st.level+st.trend)
			st.trend = cfg.Beta*(newLevel-st.level) + (1-cfg.Beta)*st.trend
			st.season[si] = cfg.Gamma*(history.At(t)-newLevel) + (1-cfg.Gamma)*st.season[si]
			st.level = newLevel
		}
	}
	st.n = n
	st.last = history.At(n - 1)
}

// forecastState extrapolates h steps from the folded state; n is the
// history length the extrapolation starts from (seasonal indexing).
func (m *Model) forecastState(st *smoothState, n, h int) []float64 {
	out := make([]float64, h)
	switch m.Config.Method {
	case SES:
		for k := range out {
			out[k] = st.level
		}
	case Holt:
		for k := range out {
			out[k] = st.level + st.trend*float64(k+1)
		}
	case HoltWinters:
		p := m.Config.Period
		for k := range out {
			out[k] = st.level + st.trend*float64(k+1) + st.season[(n+k)%p]
		}
	}
	return out
}

// RollingForecast produces one-step-ahead predictions over test, matching
// the other families' evaluation protocol.
func (m *Model) RollingForecast(train, test *timeseries.Series) ([]float64, error) {
	history := train.Clone()
	out := make([]float64, test.Len())
	for t := 0; t < test.Len(); t++ {
		fc, err := m.ForecastFrom(history, 1)
		if err != nil {
			return nil, fmt.Errorf("smoothing: rolling forecast at step %d: %w", t, err)
		}
		out[t] = fc[0]
		history.Append(test.At(t))
	}
	return out, nil
}
