package smoothing

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"sheriff/internal/timeseries"
)

func TestMethodString(t *testing.T) {
	if SES.String() != "ses" || Holt.String() != "holt" || HoltWinters.String() != "holt-winters" {
		t.Fatal("method strings wrong")
	}
	if Method(9).String() == "" {
		t.Fatal("unknown method should render")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Method: SES, Alpha: 1.0}).Validate(); err == nil {
		t.Error("alpha=1 accepted")
	}
	if err := (Config{Method: SES, Alpha: -0.1}).Validate(); err == nil {
		t.Error("negative alpha accepted")
	}
	if err := (Config{Method: HoltWinters, Period: 1}).Validate(); err == nil {
		t.Error("HW period 1 accepted")
	}
	if err := (Config{Method: Holt, Alpha: 0.3, Beta: 0.1}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestFitTooShort(t *testing.T) {
	if _, err := Fit(timeseries.New([]float64{1}), Config{Method: SES}); err == nil {
		t.Error("SES on 1 point accepted")
	}
	if _, err := Fit(timeseries.New([]float64{1, 2, 3}), Config{Method: HoltWinters, Period: 4}); err == nil {
		t.Error("short HW accepted")
	}
}

func TestSESConstantSeries(t *testing.T) {
	s := timeseries.New([]float64{5, 5, 5, 5, 5})
	m, err := Fit(s, Config{Method: SES})
	if err != nil {
		t.Fatal(err)
	}
	fc, err := m.Forecast(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range fc {
		if math.Abs(v-5) > 1e-9 {
			t.Fatalf("SES on constant series forecast %v", v)
		}
	}
	if m.SSE > 1e-12 {
		t.Fatalf("SSE = %v on constant series", m.SSE)
	}
}

func TestHoltTracksLinearTrend(t *testing.T) {
	s := timeseries.FromFunc(60, func(t int) float64 { return 3 + 2*float64(t) })
	m, err := Fit(s, Config{Method: Holt})
	if err != nil {
		t.Fatal(err)
	}
	fc, err := m.Forecast(4)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range fc {
		want := 3 + 2*float64(60+k)
		if math.Abs(v-want) > 0.5 {
			t.Fatalf("Holt forecast[%d] = %v, want %v", k, v, want)
		}
	}
}

func TestHoltWintersTracksSeason(t *testing.T) {
	period := 12
	rng := rand.New(rand.NewSource(1))
	s := timeseries.FromFunc(240, func(t int) float64 {
		return 50 + 0.1*float64(t) + 8*math.Sin(2*math.Pi*float64(t)/float64(period)) + 0.3*rng.NormFloat64()
	})
	train, test := s.Split(0.8)
	m, err := Fit(train, Config{Method: HoltWinters, Period: period})
	if err != nil {
		t.Fatal(err)
	}
	pred, err := m.RollingForecast(train, test)
	if err != nil {
		t.Fatal(err)
	}
	mse, _ := timeseries.MSE(test.Raw(), pred)
	if mse > 2 {
		t.Fatalf("Holt-Winters MSE = %.3f on a clean seasonal series", mse)
	}
	// Multi-step forecasts must keep the seasonal phase.
	fc, err := m.Forecast(period)
	if err != nil {
		t.Fatal(err)
	}
	n := train.Len()
	for k, v := range fc {
		want := 50 + 0.1*float64(n+k) + 8*math.Sin(2*math.Pi*float64(n+k)/float64(period))
		if math.Abs(v-want) > 3 {
			t.Fatalf("HW forecast[%d] = %.2f, want ≈ %.2f", k, v, want)
		}
	}
}

func TestHoltWintersBeatsSESOnSeasonalData(t *testing.T) {
	period := 24
	rng := rand.New(rand.NewSource(2))
	s := timeseries.FromFunc(360, func(t int) float64 {
		return 30 + 10*math.Sin(2*math.Pi*float64(t)/float64(period)) + rng.NormFloat64()
	})
	train, test := s.Split(0.8)
	hw, err := Fit(train, Config{Method: HoltWinters, Period: period})
	if err != nil {
		t.Fatal(err)
	}
	ses, err := Fit(train, Config{Method: SES})
	if err != nil {
		t.Fatal(err)
	}
	hwPred, err := hw.RollingForecast(train, test)
	if err != nil {
		t.Fatal(err)
	}
	sesPred, err := ses.RollingForecast(train, test)
	if err != nil {
		t.Fatal(err)
	}
	hwMSE, _ := timeseries.MSE(test.Raw(), hwPred)
	sesMSE, _ := timeseries.MSE(test.Raw(), sesPred)
	if hwMSE >= sesMSE {
		t.Fatalf("HW MSE %.3f should beat SES %.3f on seasonal data", hwMSE, sesMSE)
	}
}

func TestFixedConstantsRespected(t *testing.T) {
	s := timeseries.FromFunc(50, func(t int) float64 { return float64(t % 7) })
	m, err := Fit(s, Config{Method: SES, Alpha: 0.42})
	if err != nil {
		t.Fatal(err)
	}
	if m.Config.Alpha != 0.42 {
		t.Fatalf("fixed alpha not kept: %v", m.Config.Alpha)
	}
}

func TestForecastValidation(t *testing.T) {
	s := timeseries.FromFunc(30, func(t int) float64 { return float64(t) })
	m, err := Fit(s, Config{Method: Holt})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Forecast(0); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := m.ForecastFrom(timeseries.New([]float64{1}), 1); err == nil {
		t.Error("short history accepted")
	}
}

// Property: forecasts are finite for bounded inputs across all methods.
func TestForecastFiniteProperty(t *testing.T) {
	f := func(seed int64, methodRaw uint8) bool {
		method := Method(methodRaw % 3)
		rng := rand.New(rand.NewSource(seed))
		s := timeseries.FromFunc(80, func(t int) float64 {
			return 10*math.Sin(float64(t)/5) + rng.NormFloat64()
		})
		cfg := Config{Method: method}
		if method == HoltWinters {
			cfg.Period = 10
		}
		m, err := Fit(s, cfg)
		if err != nil {
			return false
		}
		fc, err := m.Forecast(12)
		if err != nil {
			return false
		}
		for _, v := range fc {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
