package sheriff

import (
	"testing"

	"sheriff/internal/comm"
	"sheriff/internal/faults"
	"sheriff/internal/migrate"
	"sheriff/internal/placement"
	"sheriff/internal/predictor"
	"sheriff/internal/quant"
	"sheriff/internal/runtime"
	"sheriff/internal/traces"
)

// TestOptionsContract sweeps the library's option structs through the
// shared convention: Validate rejects negative values, zero values mean
// "use the default" (filled in by WithDefaults), and explicitly set
// fields survive WithDefaults untouched.
func TestOptionsContract(t *testing.T) {
	cases := []struct {
		name string
		// negative is a struct with a nonsensical field; its Validate
		// must error.
		negative func() error
		// zeroOK: the zero struct must validate.
		zeroOK func() error
		// defaulted checks WithDefaults fills a zero field; returns
		// (got, want) of one representative default.
		defaulted func() (any, any)
		// preserved checks WithDefaults keeps a set field; returns
		// (got, want).
		preserved func() (any, any)
	}{
		{
			name:     "comm.Options",
			negative: func() error { return comm.Options{InboxLimit: -1}.Validate() },
			zeroOK:   func() error { return comm.Options{}.Validate() },
			defaulted: func() (any, any) {
				return comm.Options{}.WithDefaults().InboxLimit, 4096
			},
			preserved: func() (any, any) {
				return comm.Options{InboxLimit: 7}.WithDefaults().InboxLimit, 7
			},
		},
		{
			name:     "migrate.Params",
			negative: func() error { return migrate.Params{Alpha: -0.5}.Validate() },
			zeroOK:   func() error { return migrate.Params{}.Validate() },
			defaulted: func() (any, any) {
				return migrate.Params{}.WithDefaults().Alpha, migrate.DefaultParams().Alpha
			},
			preserved: func() (any, any) {
				return migrate.Params{Alpha: 0.4}.WithDefaults().Alpha, 0.4
			},
		},
		{
			name:     "migrate.DistOptions",
			negative: func() error { return migrate.DistOptions{RetryBudget: -2}.Validate() },
			zeroOK:   func() error { return migrate.DistOptions{}.Validate() },
			defaulted: func() (any, any) {
				return migrate.DistOptions{}.WithDefaults().RetryBudget, 4
			},
			preserved: func() (any, any) {
				return migrate.DistOptions{RetryBudget: 9}.WithDefaults().RetryBudget, 9
			},
		},
		{
			name:     "runtime.Options",
			negative: func() error { return runtime.Options{HotThreshold: -1}.Validate() },
			zeroOK:   func() error { return runtime.Options{}.Validate() },
			defaulted: func() (any, any) {
				return runtime.Options{}.WithDefaults().HotThreshold, 0.9
			},
			preserved: func() (any, any) {
				return runtime.Options{HotThreshold: 0.7}.WithDefaults().HotThreshold, 0.7
			},
		},
		{
			name:     "faults.Plan",
			negative: func() error { return faults.Plan{Drop: -0.1}.Validate() },
			zeroOK:   func() error { return faults.Plan{}.Validate() },
			defaulted: func() (any, any) {
				p := faults.Plan{Partitions: []faults.Partition{{Nodes: []int{0}}}}
				return p.WithDefaults().Partitions[0].Rounds, 1
			},
			preserved: func() (any, any) {
				p := faults.Plan{Partitions: []faults.Partition{{Rounds: 5, Nodes: []int{0}}}}
				return p.WithDefaults().Partitions[0].Rounds, 5
			},
		},
		{
			name:     "placement.PolicyOptions",
			negative: func() error { return placement.PolicyOptions{OversubFactor: 0.5}.Validate() },
			zeroOK:   func() error { return placement.PolicyOptions{}.Validate() },
			defaulted: func() (any, any) {
				return placement.PolicyOptions{Kind: placement.Oversub}.WithDefaults().OversubFactor, placement.DefaultOversubFactor
			},
			preserved: func() (any, any) {
				return placement.PolicyOptions{Kind: placement.Oversub, OversubFactor: 3}.WithDefaults().OversubFactor, 3.0
			},
		},
		{
			name:     "migrate.PreemptOptions",
			negative: func() error { return migrate.PreemptOptions{MaxEvictions: -1}.Validate() },
			zeroOK:   func() error { return migrate.PreemptOptions{}.Validate() },
			defaulted: func() (any, any) {
				return migrate.PreemptOptions{}.WithDefaults().MaxEvictions, 8
			},
			preserved: func() (any, any) {
				return migrate.PreemptOptions{MaxEvictions: 2}.WithDefaults().MaxEvictions, 2
			},
		},
		{
			name:     "migrate.RetryOptions",
			negative: func() error { return migrate.RetryOptions{MaxAttempts: -1}.Validate() },
			zeroOK:   func() error { return migrate.RetryOptions{}.Validate() },
			defaulted: func() (any, any) {
				return migrate.RetryOptions{}.WithDefaults().MaxAttempts, 3
			},
			preserved: func() (any, any) {
				return migrate.RetryOptions{MaxAttempts: 7}.WithDefaults().MaxAttempts, 7
			},
		},
		{
			name:     "PredictorOptions",
			negative: func() error { return PredictorOptions{Window: -3}.Validate() },
			zeroOK:   func() error { return PredictorOptions{}.Validate() },
			defaulted: func() (any, any) {
				return PredictorOptions{}.WithDefaults().Window, 20
			},
			preserved: func() (any, any) {
				return PredictorOptions{Window: 11}.WithDefaults().Window, 11
			},
		},
		{
			name:     "TraceOptions",
			negative: func() error { return TraceOptions{Hours: -1}.Validate() },
			zeroOK:   func() error { return TraceOptions{}.Validate() },
			defaulted: func() (any, any) {
				return TraceOptions{}.WithDefaults().Hours, 24
			},
			preserved: func() (any, any) {
				return TraceOptions{Hours: 6}.WithDefaults().Hours, 6
			},
		},
		{
			name:     "traces.SurgeParams",
			negative: func() error { return traces.SurgeParams{MeanDwell: -2}.Validate() },
			zeroOK:   func() error { return traces.SurgeParams{}.Validate() },
			defaulted: func() (any, any) {
				return traces.SurgeParams{}.WithDefaults().MeanDwell, 45
			},
			preserved: func() (any, any) {
				return traces.SurgeParams{MeanDwell: 9}.WithDefaults().MeanDwell, 9
			},
		},
		{
			name:     "quant.Coeffs",
			negative: func() error { return quant.Coeffs{AlphaNum: -1, Shift: quant.DefaultShift}.Validate() },
			zeroOK:   func() error { return quant.Coeffs{}.Validate() },
			defaulted: func() (any, any) {
				return quant.Coeffs{}.WithDefaults().Shift, uint32(quant.DefaultShift)
			},
			preserved: func() (any, any) {
				return quant.Coeffs{AlphaNum: 3, BetaNum: 2, Shift: 5, Lead: 2}.WithDefaults().Shift, uint32(5)
			},
		},
		{
			name:     "BurstConfig",
			negative: func() error { return BurstConfig{Hold: -1}.Validate() },
			zeroOK:   func() error { return BurstConfig{}.Validate() },
			defaulted: func() (any, any) {
				return BurstConfig{}.WithDefaults().Hold, 30
			},
			preserved: func() (any, any) {
				return BurstConfig{Hold: 5}.WithDefaults().Hold, 5
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.negative(); err == nil {
				t.Error("negative value passed Validate")
			}
			if err := tc.zeroOK(); err != nil {
				t.Errorf("zero value failed Validate: %v", err)
			}
			if got, want := tc.defaulted(); got != want {
				t.Errorf("WithDefaults left zero field at %v, want %v", got, want)
			}
			if got, want := tc.preserved(); got != want {
				t.Errorf("WithDefaults overwrote set field: got %v, want %v", got, want)
			}
		})
	}
}

// TestPredictorOptionsRejected pins that the consolidated constructor
// actually routes through Validate.
func TestPredictorOptionsRejected(t *testing.T) {
	if _, err := NewPredictor([]float64{1, 2, 3}, PredictorOptions{Period: -1}); err == nil {
		t.Fatal("NewPredictor accepted a negative period")
	}
	if _, err := NewPredictor([]float64{1, 2, 3}, PredictorOptions{Pool: predictor.PoolKind(99)}); err == nil {
		t.Fatal("NewPredictor accepted an unknown pool kind")
	}
}
