// BCube migration: the Figs. 10/13/14 study on the server-centric BCube
// topology — balancing decay plus the Sheriff-vs-centralized sweep, and a
// look at the k-median destination-planning view of Sec. V.A.
package main

import (
	"fmt"
	"log"

	"sheriff"
	"sheriff/internal/centralized"
	"sheriff/internal/cost"
	"sheriff/internal/dcn"
	"sheriff/internal/migrate"
)

func main() {
	// Part 1: balancing on BCube (Fig. 10).
	s, err := sheriff.BuildSimulation(sheriff.SimConfig{Kind: sheriff.BCube, Size: 8, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	s.PopulateSkewed(0.5)
	series, err := s.RunBalancing(24, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BCube(8,1): %d server nodes, stddev %.2f%% -> %.2f%% over 24 rounds\n",
		len(s.Cluster.Racks), series[0], series[len(series)-1])

	// Part 2: Sheriff vs centralized on BCube (Figs. 13–14).
	fmt.Println("\nn   sheriff-cost  central-cost  sheriff-space  central-space")
	for _, n := range []int{4, 8, 12} {
		res, err := sheriff.Compare(sheriff.SimConfig{Kind: sheriff.BCube, Size: n, Seed: 4})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-3d %12.1f  %12.1f  %13d  %13d\n",
			n, res.SheriffCost, res.CentralCost, res.SheriffSpace, res.CentralSpace)
	}

	// Part 3: the Sec. V.A k-median view — choose 3 destination nodes for
	// the alerted source nodes, with the 3+2/p local-search guarantee.
	cluster, model, _, err := sheriff.NewBCubeCluster(6, 2, 100)
	if err != nil {
		log.Fatal(err)
	}
	mgr := centralized.New(cluster, model)
	sources := []int{0, 7, 14, 21, 28}
	sol, err := mgr.PlanDestinations(sources, 3, 2, false, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nk-median destinations for sources %v: open %v, cost %.1f (guarantee %.2f×OPT)\n",
		sources, sol.Open, sol.Cost, sheriff.LocalSearchRatio(2))

	// Migrate one VM along the planned assignment to show the full path:
	// pick a source whose assigned median is another node.
	pick := 0
	for i, srcIdx := range sources {
		if sol.Assignment[i] != srcIdx {
			pick = i
			break
		}
	}
	src := cluster.Racks[sources[pick]]
	vm, err := cluster.AddVM(src.Hosts[0], 15, 1, false)
	if err != nil {
		log.Fatal(err)
	}
	dst := cluster.Racks[sol.Assignment[pick]]
	res, err := migrate.VMMigration(cluster, model, []*dcn.VM{vm}, dst.Hosts)
	if err != nil {
		log.Fatal(err)
	}
	if len(res.Migrations) == 1 {
		m := res.Migrations[0]
		fmt.Printf("moved %s from node %d to node %d at cost %.2f\n",
			m.VM.Name, src.Index, dst.Index, m.Cost)
	}
	_ = cost.PaperParams() // the cost constants in play: C_r=100, δ=η=1, C_d=1
}
