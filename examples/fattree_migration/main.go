// Fat-Tree migration: the Figs. 9/11/12 study — run 24 balancing rounds
// on a skewed 8-pod Fat-Tree and print the workload-stddev decay, then a
// Sheriff-vs-centralized comparison across pod counts.
package main

import (
	"fmt"
	"log"

	"sheriff"
)

func main() {
	// Part 1: workload balancing (Fig. 9).
	s, err := sheriff.BuildSimulation(sheriff.SimConfig{Kind: sheriff.FatTree, Size: 8, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	n := s.PopulateSkewed(0.5)
	fmt.Printf("Fat-Tree(8): %d racks, %d VMs, initial workload stddev %.2f%%\n",
		len(s.Cluster.Racks), n, s.Cluster.WorkloadStdDev())

	series, err := s.RunBalancing(24, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("round  stddev(%)")
	for i, sd := range series {
		if i%4 == 0 || i == len(series)-1 {
			fmt.Printf("%5d  %8.3f\n", i, sd)
		}
	}

	// Part 2: Sheriff vs the centralized optimal manager (Figs. 11–12).
	fmt.Println("\npods  sheriff-cost  central-cost  sheriff-space  central-space")
	for _, pods := range []int{8, 12, 16} {
		res, err := sheriff.Compare(sheriff.SimConfig{Kind: sheriff.FatTree, Size: pods, Seed: 2})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%4d  %12.1f  %12.1f  %13d  %13d\n",
			pods, res.SheriffCost, res.CentralCost, res.SheriffSpace, res.CentralSpace)
	}
	fmt.Println("\nSheriff's regional search space stays a small fraction of the")
	fmt.Println("centralized manager's while matching its migration cost closely.")
}
