// Distributed protocol: the Sec. V.B conflict-avoidance machinery as an
// actual message exchange — shims send REQUEST envelopes over a lossy
// bus, destinations grant capacity FCFS and reply ACK/REJECT, and the
// protocol converges by timeout and retransmission.
package main

import (
	"fmt"
	"log"

	"sheriff"
	"sheriff/internal/comm"
	"sheriff/internal/dcn"
	"sheriff/internal/migrate"
)

func main() {
	cluster, model, shims, err := sheriff.NewFatTreeCluster(4, 2, 100)
	if err != nil {
		log.Fatal(err)
	}

	// Three overloaded VMs in rack 0, two in rack 1 (same pod): both
	// shims compete for the pod's free slots.
	var sets = make([][]*dcn.VM, len(shims))
	for i, n := range []int{3, 2} {
		h := cluster.Racks[i].Hosts[0]
		for k := 0; k < n; k++ {
			vm, err := cluster.AddVM(h, 25, float64(k+1), false)
			if err != nil {
				log.Fatal(err)
			}
			sets[i] = append(sets[i], vm)
		}
	}
	fmt.Printf("rack 0 sheds %d VMs, rack 1 sheds %d; pod capacity is shared\n",
		len(sets[0]), len(sets[1]))

	// A bus that drops 20% of messages and delays the rest up to 1 round.
	bus, err := comm.NewBus(comm.Options{LossRate: 0.2, MaxDelay: 1, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	res, err := migrate.DistributedVMMigration(cluster, model, bus, shims, sets, migrate.DistOptions{})
	if err != nil {
		log.Fatal(err)
	}

	sent, dropped := bus.Stats()
	fmt.Printf("protocol finished in %d rounds\n", res.Rounds)
	fmt.Printf("messages: %d sent, %d dropped by the fabric\n", sent, dropped)
	fmt.Printf("outcome: %d migrations (cost %.1f), %d rejections, %d retransmits, %d unplaced\n",
		len(res.Migrations), res.TotalCost, res.Rejected, res.Retransmits, len(res.Unplaced))
	for _, m := range res.Migrations {
		fmt.Printf("  %s -> host %d (rack %d) at cost %.1f\n",
			m.VM.Name, m.To.ID, m.To.Rack().Index, m.Cost)
	}

	// Invariant check: despite loss and contention, nothing oversubscribed.
	for _, h := range cluster.Hosts() {
		if h.Used() > h.Capacity {
			log.Fatalf("host %d oversubscribed!", h.ID)
		}
	}
	fmt.Println("all hosts within capacity — conflicts resolved by the REQUEST/ACK handshake")
}
