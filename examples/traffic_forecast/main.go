// Traffic forecast: the Figs. 6–8 prediction study end to end — generate
// a weekly switch-traffic trace, fit ARIMA(1,1,1) and a NARNET, run the
// dynamic-selection combined predictor over the test region, and compare
// errors. Finishes with the pre-alert check: does the predicted next
// value cross the threshold?
package main

import (
	"fmt"
	"log"

	"sheriff"
	"sheriff/internal/timeseries"
	"sheriff/internal/traces"
)

func main() {
	// Seven days of switch traffic, 64 samples/day (the paper's ~450
	// time units), with daily+weekly periodicity and a nonlinear
	// amplitude envelope.
	trace := traces.WeeklyTraffic(traces.TrafficConfig{Days: 7, PerDay: 64, Seed: 7})
	fmt.Println(traces.Describe("weekly traffic", trace))

	data := trace.Values()
	nTrain := int(0.7 * float64(len(data)))
	train, test := data[:nTrain], data[nTrain:]

	// Single models.
	am, err := sheriff.FitARIMA(train, 1, 1, 1)
	if err != nil {
		log.Fatal(err)
	}
	nn, err := sheriff.TrainNARNET(train, 16, 20, 7)
	if err != nil {
		log.Fatal(err)
	}
	aPred, err := am.RollingForecast(timeseries.New(train), timeseries.New(test))
	if err != nil {
		log.Fatal(err)
	}
	nPred, err := nn.RollingForecast(timeseries.New(train), timeseries.New(test))
	if err != nil {
		log.Fatal(err)
	}
	aMSE, _ := timeseries.MSE(test, aPred)
	nMSE, _ := timeseries.MSE(test, nPred)

	// Combined dynamic selection (Sec. IV.B): at each step the candidate
	// with the lowest sliding-window MSE predicts.
	sel, err := sheriff.NewPredictor(train, sheriff.PredictorOptions{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	combined := make([]float64, len(test))
	for t := range test {
		p, err := sel.Predict()
		if err != nil {
			log.Fatal(err)
		}
		combined[t] = p
		sel.Observe(test[t])
	}
	cMSE, _ := timeseries.MSE(test, combined)

	fmt.Printf("ARIMA(1,1,1)  test MSE: %8.3f\n", aMSE)
	fmt.Printf("NARNET(16,20) test MSE: %8.3f\n", nMSE)
	fmt.Printf("combined      test MSE: %8.3f\n", cMSE)

	// Pre-alert: normalize the prediction into the profile and apply the
	// THRESHOLD rule.
	next, err := sel.Predict()
	if err != nil {
		log.Fatal(err)
	}
	hi := trace.Max()
	profile := sheriff.Profile{TRF: next / hi}
	value, fired := sheriff.EvaluateAlert(profile, sheriff.DefaultThresholds())
	fmt.Printf("next predicted traffic %.1f MB (%.0f%% of peak) -> alert=%v (value %.2f)\n",
		next, profile.TRF*100, fired, value)
}
