// Congestion control: the switch-side half of Sheriff (Sec. III.B) — a
// QCN loop converging an end-host sender onto a bottleneck, followed by
// FLOWREROUTE steering flows around a hot aggregation switch.
package main

import (
	"fmt"
	"log"

	"sheriff/internal/flow"
	"sheriff/internal/qcn"
	"sheriff/internal/topology"
)

func main() {
	// Part 1: one QCN tunnel. A sender at line rate 10 shares a
	// bottleneck that drains 6 per step. The congestion point samples
	// Fb = −(Q_off + w·Q_delta); the reaction point backs off and then
	// recovers toward the bottleneck rate.
	cp, err := qcn.NewCongestionPoint(qcn.CPConfig{QEq: 600})
	if err != nil {
		log.Fatal(err)
	}
	rp, err := qcn.NewReactionPoint(qcn.RPConfig{LineRate: 10, BCLimit: 30})
	if err != nil {
		log.Fatal(err)
	}
	tunnel, err := qcn.NewTunnel(cp, rp, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("QCN convergence (line rate 10, bottleneck 6):")
	fmt.Println("step   rate   queue  occupancy")
	for i := 0; i <= 2000; i++ {
		tunnel.Step()
		if i%250 == 0 {
			fmt.Printf("%4d  %5.2f  %6.0f  %8.2f\n", i, rp.Rate(), cp.Len(), cp.Occupancy())
		}
	}
	fmt.Printf("feedback messages delivered: %d, drops: %.0f\n\n", tunnel.Feedbacks(), cp.Dropped())

	// Part 2: FLOWREROUTE. Load one aggregation switch of a Fat-Tree past
	// 90% and steer the conflict flows around it.
	ft, err := topology.NewFatTree(topology.FatTreeConfig{Pods: 4})
	if err != nil {
		log.Fatal(err)
	}
	net := flow.NewNetwork(ft.Graph)
	src, dst := ft.RackIDs[0][0], ft.RackIDs[0][1]
	for i := 0; i < 3; i++ {
		if _, err := net.AddFlow(src, dst, 0.5, i == 0); err != nil {
			log.Fatal(err)
		}
	}
	hot := net.HotSwitches(0.9)
	fmt.Printf("hot switches before reroute: %v\n", names(ft.Graph, hot))
	for _, sw := range hot {
		moved := net.RerouteAroundHot(sw, 0.9)
		fmt.Printf("rerouted %d flows around %s (delay-sensitive flows stay)\n",
			len(moved), ft.Graph.Node(sw).Name)
		for _, f := range moved {
			fmt.Printf("  flow %d now via %v\n", f.ID, names(ft.Graph, f.Path()))
		}
	}
	fmt.Printf("hot switches after reroute: %v\n", names(ft.Graph, net.HotSwitches(0.9)))

	// The residual bandwidth flows leave behind feeds the migration cost
	// model (B(e) in Eqn. 1).
	net.UpdateGraphBandwidth()
	e, _ := ft.Graph.EdgeBetween(src, hot[0])
	fmt.Printf("residual bandwidth on the hot uplink: %.2f of %.2f\n", e.Bandwidth, e.Capacity)
}

func names(g *topology.Graph, ids []int) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = g.Node(id).Name
	}
	return out
}
