// Quickstart: build a small Fat-Tree DCN, overload a host, raise a
// pre-alert, and watch the rack's shim migrate VMs away — the minimal
// end-to-end Sheriff loop.
package main

import (
	"fmt"
	"log"

	"sheriff"
)

func main() {
	// A 4-pod Fat-Tree: 8 racks, 2 hosts per rack, 100 capacity units each.
	cluster, _, shims, err := sheriff.NewFatTreeCluster(4, 2, 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster: %d racks, %d hosts\n", len(cluster.Racks), len(cluster.Hosts()))

	// Load one host close to its capacity with four VMs.
	hot := cluster.Racks[0].Hosts[0]
	for i := 0; i < 4; i++ {
		if _, err := cluster.AddVM(hot, 20, float64(i+1), false); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("host %d load before: %.0f%%\n", hot.ID, hot.Utilization()*100)

	// The pre-alert phase would predict this host's profile crossing the
	// threshold; here we evaluate the rule directly on a predicted profile.
	predicted := sheriff.Profile{CPU: 0.93, Mem: 0.70, IO: 0.40, TRF: 0.55}
	value, fired := sheriff.EvaluateAlert(predicted, sheriff.DefaultThresholds())
	fmt.Printf("predicted profile %+v -> alert fired=%v value=%.2f\n", predicted, fired, value)
	if !fired {
		return
	}

	// Deliver the ALERT to the rack's shim; it selects VMs with the
	// PRIORITY knapsack and migrates them by minimum-weight matching.
	report, err := shims[0].ProcessAlerts([]sheriff.Alert{{
		Kind:   0, // FromServer
		HostID: hot.ID,
		Value:  value,
	}})
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range report.Migrations {
		fmt.Printf("migrated %s (cap %.0f) host %d -> host %d, cost %.2f\n",
			m.VM.Name, m.VM.Capacity, m.From.ID, m.To.ID, m.Cost)
	}
	fmt.Printf("host %d load after: %.0f%% (total cost %.2f, search space %d)\n",
		hot.ID, hot.Utilization()*100, report.TotalCost, report.SearchSpace)
}
