package sheriff

import (
	"testing"

	"sheriff/internal/alert"
	"sheriff/internal/arima"
	"sheriff/internal/comm"
	"sheriff/internal/cost"
	"sheriff/internal/dcn"
	"sheriff/internal/flow"
	"sheriff/internal/migrate"
	"sheriff/internal/placement"
	"sheriff/internal/qcn"
	"sheriff/internal/runtime"
	"sheriff/internal/timeseries"
	"sheriff/internal/topology"
)

// --- Extended substrate benches: QCN, flow plane, runtime, coordinator ---

func BenchmarkQCNTunnelStep(b *testing.B) {
	cp, err := qcn.NewCongestionPoint(qcn.CPConfig{QEq: 600})
	if err != nil {
		b.Fatal(err)
	}
	rp, err := qcn.NewReactionPoint(qcn.RPConfig{LineRate: 10, BCLimit: 30})
	if err != nil {
		b.Fatal(err)
	}
	tn, err := qcn.NewTunnel(cp, rp, 6)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tn.Step()
	}
}

func BenchmarkFlowAddRemove(b *testing.B) {
	ft, err := topology.NewFatTree(topology.FatTreeConfig{Pods: 8})
	if err != nil {
		b.Fatal(err)
	}
	n := flow.NewNetwork(ft.Graph)
	racks := ft.Racks()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := n.AddFlow(racks[i%len(racks)], racks[(i+7)%len(racks)], 0.2, false)
		if err != nil {
			b.Fatal(err)
		}
		n.RemoveFlow(f.ID)
	}
}

func BenchmarkFlowRerouteAroundHot(b *testing.B) {
	ft, err := topology.NewFatTree(topology.FatTreeConfig{Pods: 8})
	if err != nil {
		b.Fatal(err)
	}
	n := flow.NewNetwork(ft.Graph)
	src, dst := ft.RackIDs[0][0], ft.RackIDs[0][1]
	for i := 0; i < 4; i++ {
		if _, err := n.AddFlow(src, dst, 0.4, false); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, sw := range n.HotSwitches(0.9) {
			n.RerouteAroundHot(sw, 0.9)
		}
	}
}

func BenchmarkKShortestPaths(b *testing.B) {
	ft, err := topology.NewFatTree(topology.FatTreeConfig{Pods: 8})
	if err != nil {
		b.Fatal(err)
	}
	src, dst := ft.RackIDs[0][0], ft.RackIDs[4][0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if paths := topology.KShortestPaths(ft.Graph, src, dst, 4, topology.DistanceCost); len(paths) == 0 {
			b.Fatal("no paths")
		}
	}
}

func BenchmarkDijkstraAllRacks(b *testing.B) {
	ft, err := topology.NewFatTree(topology.FatTreeConfig{Pods: 16})
	if err != nil {
		b.Fatal(err)
	}
	racks := ft.Racks()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		topology.DijkstraFrom(ft.Graph, racks, topology.DistanceCost)
	}
}

func BenchmarkSARIMAFit(b *testing.B) {
	s := benchSeries(448)
	order := arima.SeasonalOrder{Order: arima.Order{P: 1, Q: 1}, SP: 1, SD: 1, Period: 64}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := arima.FitSeasonal(s, order); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompose(b *testing.B) {
	s := benchSeries(448)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := timeseries.Decompose(s, 64); err != nil {
			b.Fatal(err)
		}
	}
}

func benchRuntime(b *testing.B) *runtime.Runtime {
	b.Helper()
	ft, err := topology.NewFatTree(topology.FatTreeConfig{Pods: 8})
	if err != nil {
		b.Fatal(err)
	}
	cluster, err := dcn.NewCluster(ft.Graph, dcn.Config{HostsPerRack: 2, HostCapacity: 100, ToRCapacity: 200})
	if err != nil {
		b.Fatal(err)
	}
	cluster.Populate(dcn.PopulateOptions{
		VMsPerHost: 3, MinCapacity: 5, MaxCapacity: 15,
		DependencyProb: 0.4, CrossRackDependencyProb: 0.4, Seed: benchSeed,
	})
	model, err := cost.New(cluster, cost.PaperParams())
	if err != nil {
		b.Fatal(err)
	}
	rt, err := runtime.New(cluster, model, runtime.Options{Seed: benchSeed})
	if err != nil {
		b.Fatal(err)
	}
	return rt
}

func BenchmarkRuntimeStep(b *testing.B) {
	rt := benchRuntime(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCoordinatorRound(b *testing.B) {
	ft, err := topology.NewFatTree(topology.FatTreeConfig{Pods: 8})
	if err != nil {
		b.Fatal(err)
	}
	cluster, err := dcn.NewCluster(ft.Graph, dcn.Config{HostsPerRack: 2, HostCapacity: 100, ToRCapacity: 200})
	if err != nil {
		b.Fatal(err)
	}
	cluster.Populate(dcn.PopulateOptions{VMsPerHost: 4, MinCapacity: 5, MaxCapacity: 20, Seed: benchSeed})
	model, err := cost.New(cluster, cost.PaperParams())
	if err != nil {
		b.Fatal(err)
	}
	var shims []*migrate.Shim
	for _, r := range cluster.Racks {
		s, err := migrate.NewShim(cluster, model, r, migrate.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		shims = append(shims, s)
	}
	co := migrate.NewCoordinator(cluster, model, shims)
	alerts := make([][]alert.Alert, len(shims))
	for i, shim := range shims {
		for _, h := range shim.Rack.Hosts {
			alerts[i] = append(alerts[i], alert.Alert{Kind: alert.FromServer, HostID: h.ID, Value: 0.92})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := co.Round(alerts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistributedVMMigration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ft, err := topology.NewFatTree(topology.FatTreeConfig{Pods: 4})
		if err != nil {
			b.Fatal(err)
		}
		cluster, err := dcn.NewCluster(ft.Graph, dcn.Config{HostsPerRack: 2, HostCapacity: 100, ToRCapacity: 200})
		if err != nil {
			b.Fatal(err)
		}
		model, err := cost.New(cluster, cost.PaperParams())
		if err != nil {
			b.Fatal(err)
		}
		var shims []*migrate.Shim
		for _, r := range cluster.Racks {
			s, err := migrate.NewShim(cluster, model, r, migrate.DefaultParams())
			if err != nil {
				b.Fatal(err)
			}
			shims = append(shims, s)
		}
		sets := make([][]*dcn.VM, len(shims))
		for ri := 0; ri < 4; ri++ {
			h := cluster.Racks[ri].Hosts[0]
			for k := 0; k < 3; k++ {
				vm, err := cluster.AddVM(h, 20, 1, false)
				if err != nil {
					b.Fatal(err)
				}
				sets[ri] = append(sets[ri], vm)
			}
		}
		bus, err := comm.NewBus(comm.Options{LossRate: 0.1, Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := migrate.DistributedVMMigration(cluster, model, bus, shims, sets, migrate.DistOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlacementPolicies(b *testing.B) {
	caps := make([]float64, 48)
	for i := range caps {
		caps[i] = 10
	}
	for _, pol := range []placement.Kind{placement.FirstFit, placement.BestFit, placement.WorstFit} {
		b.Run(pol.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				ft, err := topology.NewFatTree(topology.FatTreeConfig{Pods: 4})
				if err != nil {
					b.Fatal(err)
				}
				cluster, err := dcn.NewCluster(ft.Graph, dcn.Config{HostsPerRack: 2, HostCapacity: 100, ToRCapacity: 200})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := placement.New(cluster, pol, benchSeed).PlaceAll(caps); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
