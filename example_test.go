package sheriff_test

import (
	"fmt"
	"log"

	"sheriff"
)

// ExampleEvaluateAlert shows the Sec. IV.C ALERT rule: the alert fires
// when any profile component exceeds its threshold, and its value is the
// profile maximum.
func ExampleEvaluateAlert() {
	profile := sheriff.Profile{CPU: 0.93, Mem: 0.70, IO: 0.40, TRF: 0.55}
	value, fired := sheriff.EvaluateAlert(profile, sheriff.DefaultThresholds())
	fmt.Printf("fired=%v value=%.2f\n", fired, value)

	quiet := sheriff.Profile{CPU: 0.50, Mem: 0.50, IO: 0.50, TRF: 0.50}
	_, fired = sheriff.EvaluateAlert(quiet, sheriff.DefaultThresholds())
	fmt.Printf("fired=%v\n", fired)
	// Output:
	// fired=true value=0.93
	// fired=false
}

// ExampleLocalSearchRatio shows the Alg. 5 approximation guarantee 3+2/p.
func ExampleLocalSearchRatio() {
	for p := 1; p <= 3; p++ {
		fmt.Printf("p=%d ratio=%.2f\n", p, sheriff.LocalSearchRatio(p))
	}
	// Output:
	// p=1 ratio=5.00
	// p=2 ratio=4.00
	// p=3 ratio=3.67
}

// ExampleNewFatTreeCluster builds the management substrate: a Fat-Tree
// cluster with one shim per rack.
func ExampleNewFatTreeCluster() {
	cluster, _, shims, err := sheriff.NewFatTreeCluster(4, 2, 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("racks=%d hosts=%d shims=%d\n",
		len(cluster.Racks), len(cluster.Hosts()), len(shims))
	// Output:
	// racks=8 hosts=16 shims=8
}

// ExampleShim_ProcessAlerts runs one management round: a host alert is
// turned into a PRIORITY selection and a matched migration.
func ExampleShim_ProcessAlerts() {
	cluster, _, shims, err := sheriff.NewFatTreeCluster(4, 2, 100)
	if err != nil {
		log.Fatal(err)
	}
	hot := cluster.Racks[0].Hosts[0]
	for i := 0; i < 4; i++ {
		if _, err := cluster.AddVM(hot, 20, float64(i+1), false); err != nil {
			log.Fatal(err)
		}
	}
	report, err := shims[0].ProcessAlerts([]sheriff.Alert{{HostID: hot.ID, Value: 0.95}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("migrations=%d cost=%.0f\n", len(report.Migrations), report.TotalCost)
	// Output:
	// migrations=1 cost=100
}
