// Command tracegen generates the synthetic workload traces (the stand-ins
// for the paper's ZopleCloud data) and writes them as CSV, ready to be
// fed back through `predict -file` or external tooling.
//
// Usage:
//
//	tracegen -trace traffic -days 7 -o traffic.csv
//	tracegen -trace cpu -hours 24 -seed 3 -o -
//	tracegen -trace profile -hours 4 -o profiles.csv
//	tracegen -trace profile -kind surge -hours 12 -vm 3 -rack 1 -o -
//
// -kind selects the trace-generator family for profile traces (diurnal,
// lite, surge, surge-lite) via the unified traces.New API; -vm and -rack
// pick the stream, which matters for the rack-correlated surge bursts.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"sheriff/internal/traces"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
}

// run carries the whole command behind a returned error so the output
// file's deferred close always fires, even on a generation failure.
func run(args []string, stdout io.Writer) (err error) {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	trace := fs.String("trace", "traffic", "traffic, cpu, io, or profile")
	days := fs.Int("days", 7, "trace length in days (traffic)")
	hours := fs.Int("hours", 24, "trace length in hours (cpu, io, profile)")
	perDay := fs.Int("per-day", 64, "samples per day (traffic)")
	seed := fs.Int64("seed", 1, "generator seed")
	kind := fs.String("kind", "", "profile generator family: diurnal, lite, surge, surge-lite (profile)")
	vmID := fs.Int("vm", 0, "VM stream to generate (profile)")
	rack := fs.Int("rack", 0, "rack of the VM stream (profile; surge kinds correlate bursts by rack)")
	out := fs.String("o", "-", "output file; - for stdout")
	if perr := fs.Parse(args); perr != nil {
		if errors.Is(perr, flag.ErrHelp) {
			return nil
		}
		return perr
	}

	w := stdout
	if *out != "-" {
		f, cerr := os.Create(*out)
		if cerr != nil {
			return cerr
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		w = f
	}

	switch *trace {
	case "traffic":
		s := traces.WeeklyTraffic(traces.TrafficConfig{Days: *days, PerDay: *perDay, Seed: *seed})
		return traces.WriteCSV(w, "traffic_mb", s)
	case "cpu":
		s := traces.CPU(traces.CPUConfig{Hours: *hours, Seed: *seed})
		return traces.WriteCSV(w, "cpu_pct", s)
	case "io":
		s := traces.DiskIO(traces.DiskIOConfig{Hours: *hours, Seed: *seed})
		return traces.WriteCSV(w, "io_mbps", s)
	case "profile":
		k, kerr := traces.ParseKind(*kind)
		if kerr != nil {
			return kerr
		}
		gen, gerr := traces.New(traces.Options{Kind: k, Seed: *seed, Hours: *hours})
		if gerr != nil {
			return gerr
		}
		src := gen.Source(*vmID, *rack)
		profiles := make([]traces.Profile, *hours*traces.SamplesPerHour)
		for i := range profiles {
			profiles[i] = src.Next()
		}
		return traces.WriteProfileCSV(w, profiles)
	default:
		return fmt.Errorf("unknown trace %q (want traffic, cpu, io, profile)", *trace)
	}
}
