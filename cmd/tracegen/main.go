// Command tracegen generates the synthetic workload traces (the stand-ins
// for the paper's ZopleCloud data) and writes them as CSV, ready to be
// fed back through `predict -file` or external tooling.
//
// Usage:
//
//	tracegen -trace traffic -days 7 -o traffic.csv
//	tracegen -trace cpu -hours 24 -seed 3 -o -
//	tracegen -trace profile -hours 4 -o profiles.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"sheriff/internal/traces"
)

func main() {
	trace := flag.String("trace", "traffic", "traffic, cpu, io, or profile")
	days := flag.Int("days", 7, "trace length in days (traffic)")
	hours := flag.Int("hours", 24, "trace length in hours (cpu, io, profile)")
	perDay := flag.Int("per-day", 64, "samples per day (traffic)")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("o", "-", "output file; - for stdout")
	flag.Parse()

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fail(err)
			}
		}()
		w = f
	}

	switch *trace {
	case "traffic":
		s := traces.WeeklyTraffic(traces.TrafficConfig{Days: *days, PerDay: *perDay, Seed: *seed})
		if err := traces.WriteCSV(w, "traffic_mb", s); err != nil {
			fail(err)
		}
	case "cpu":
		s := traces.CPU(traces.CPUConfig{Hours: *hours, Seed: *seed})
		if err := traces.WriteCSV(w, "cpu_pct", s); err != nil {
			fail(err)
		}
	case "io":
		s := traces.DiskIO(traces.DiskIOConfig{Hours: *hours, Seed: *seed})
		if err := traces.WriteCSV(w, "io_mbps", s); err != nil {
			fail(err)
		}
	case "profile":
		g := traces.NewWorkloadGen(*hours, *seed)
		n := g.Len()
		profiles := make([]traces.Profile, n)
		for i := range profiles {
			profiles[i] = g.Next()
		}
		if err := traces.WriteProfileCSV(w, profiles); err != nil {
			fail(err)
		}
	default:
		fail(fmt.Errorf("unknown trace %q (want traffic, cpu, io, profile)", *trace))
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
	os.Exit(1)
}
