// Command sheriffsim runs the Sec. VI.B migration simulations.
//
// Usage:
//
//	sheriffsim -mode balance -topology fat-tree -size 8 -rounds 24
//	sheriffsim -mode compare -topology bcube -size 12
//	sheriffsim -mode sweep -topology fat-tree -sizes 8,16,24,32
//	sheriffsim -mode plan -topology fat-tree -size 48 -k 32
//	sheriffsim -mode plan -size 16 -exact   # adds the branch-and-bound OPT
//	sheriffsim -mode dist -size 8 -loss 0.05 -trace out.jsonl
//	sheriffsim -mode chaos -seed 42 -drop 0.2 -dup 0.25 -partition 1:3:0 -trace chaos.jsonl
//	sheriffsim -mode scale -racks 1000 -vms 4 -steps 10 -shards 4 -json BENCH_scale.json
//	sheriffsim -mode scale -racks 5000 -hosts 20 -vms 10 -traces lite -threshold 2  # 1M VMs
//	sheriffsim -mode policy -size 4 -json BENCH_policy.json
//	sheriffsim -mode surge -seed 1 -json BENCH_surge.json
//	sheriffsim -mode ingest -seed 1 -json BENCH_ingest.json
//
// Surge mode evaluates the burst-extended predictor pool over the regime
// grid (diurnal control, training-job waves, flash crowds, correlated
// rack bursts): each (regime, candidate) cell reports one-step MSE,
// sliding-window win share, and the operator's early-warning scores
// (lead time, precision, recall), then a cluster pass drives correlated
// multi-rack bursts through the sharded step engine.
//
// Ingest mode distills the deep pool into the fixed-point triage filter
// and grades it: per-regime alert precision/recall/lead-time of the
// quantized filter against the pool's alerts, plus the float-vs-quantized
// ingest service benchmark (throughput, drain p99, allocs/update).
//
// -trace writes a JSONL event stream (see internal/obs); with no explicit
// -mode it implies -mode dist, the message-level protocol whose
// REQUEST/ACK/REJECT/retry decisions the trace captures. Chaos mode runs
// the same protocol under a seeded fault plan (internal/faults): drops,
// duplication, reordering, delay jitter, and named partition windows.
// The trace file is closed (and therefore parseable) even when a run
// fails mid-way.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"sheriff/internal/comm"
	"sheriff/internal/experiments"
	"sheriff/internal/faults"
	"sheriff/internal/migrate"
	"sheriff/internal/obs"
	"sheriff/internal/placement"
	"sheriff/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "sheriffsim: %v\n", err)
		os.Exit(1)
	}
}

// run carries the whole command behind a returned error so the deferred
// trace close always fires — a failed simulation still leaves a closed,
// parseable JSONL trace.
func run(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("sheriffsim", flag.ContinueOnError)
	mode := fs.String("mode", "balance", "balance, compare, sweep, plan, dist, chaos, scale, policy, surge, or ingest")
	topo := fs.String("topology", "fat-tree", "fat-tree or bcube")
	size := fs.Int("size", 8, "pods (fat-tree) or switches per level (bcube)")
	sizes := fs.String("sizes", "", "comma-separated size sweep (mode=sweep)")
	rounds := fs.Int("rounds", 24, "balancing rounds (mode=balance)")
	seed := fs.Int64("seed", 1, "simulation seed")
	hostsPerRack := fs.Int("hosts", 4, "hosts per rack")
	vmsPerHost := fs.Int("vms", 4, "VMs per host")
	k := fs.Int("k", 0, "destination ToRs to plan (mode=plan; 0 = clients/4)")
	p := fs.Int("p", 1, "Alg. 5 swap size (mode=plan)")
	exact := fs.Bool("exact", false, "also compute the branch-and-bound optimum (mode=plan)")
	loss := fs.Float64("loss", 0.05, "bus message loss rate (mode=dist)")
	trace := fs.String("trace", "", "write a JSONL event trace to this file (implies -mode dist unless -mode is set)")
	drop := fs.Float64("drop", 0.2, "fault plan: per-message drop probability (mode=chaos)")
	dup := fs.Float64("dup", 0.1, "fault plan: per-message duplication probability (mode=chaos)")
	reorder := fs.Float64("reorder", 0.2, "fault plan: per-batch delivery reorder probability (mode=chaos)")
	delay := fs.Int("delay", 0, "fault plan: fixed extra delivery delay in rounds (mode=chaos)")
	jitter := fs.Int("jitter", 1, "fault plan: uniform extra delay bound in rounds (mode=chaos)")
	partition := fs.String("partition", "", "fault plan: partition windows as start:rounds:node,node[;...] (mode=chaos)")
	racks := fs.Int("racks", 1000, "leaf racks in the leaf-spine fabric (mode=scale)")
	spines := fs.Int("spines", 0, "spine switches (mode=scale; 0 = topology default)")
	steps := fs.Int("steps", 10, "collection periods to run (mode=scale)")
	shards := fs.Int("shards", 0, "shard workers (mode=scale; 0 = number of CPUs)")
	threshold := fs.Float64("threshold", 0.9, "alert threshold for all profile components (mode=scale; >1 = alert-free)")
	dep := fs.Float64("dep", 0, "dependency probability (mode=scale)")
	tracesKind := fs.String("traces", "", "trace-generator family: diurnal, lite, surge, surge-lite (mode=scale; \"\" = diurnal)")
	reference := fs.Bool("reference", false, "drive the seed reference engine instead of the sharded one (mode=scale)")
	jsonOut := fs.String("json", "", "append results as JSON lines to this file (mode=scale, policy, surge)")
	hours := fs.Int("hours", 12, "trace hours per surge regime; first half trains the pool (mode=surge, ingest)")
	window := fs.Int("window", 0, "selector sliding-MSE window (mode=surge, ingest; 0 = predictor default)")
	maxLead := fs.Int("max-lead", 10, "alert horizon in steps (mode=surge, ingest)")
	intensity := fs.Float64("intensity", 1.5, "surge amplitude scale (mode=surge, ingest)")
	tolerance := fs.Int("tolerance", 0, "alert-matching window in steps vs the pool's alerts (mode=ingest; 0 = 3)")
	benchRacks := fs.Int("bench-racks", 0, "benchmarked ingest service racks (mode=ingest; 0 = 32)")
	benchVMs := fs.Int("bench-vms", 0, "benchmarked VMs per rack (mode=ingest; 0 = 32)")
	benchRounds := fs.Int("bench-rounds", 0, "timed full-fleet sweeps per mode (mode=ingest; 0 = 2000)")
	clusterRacks := fs.Int("cluster-racks", 0, "racks in the correlated-burst cluster pass (mode=surge; 0 = 8)")
	clusterSteps := fs.Int("cluster-steps", 0, "steps in the cluster pass (mode=surge; 0 = 120)")
	noCluster := fs.Bool("no-cluster", false, "skip the cluster pass (mode=surge)")
	if perr := fs.Parse(args); perr != nil {
		if errors.Is(perr, flag.ErrHelp) {
			return nil
		}
		return perr
	}

	modeSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "mode" {
			modeSet = true
		}
	})
	if *trace != "" && !modeSet {
		*mode = "dist"
	}

	var rec *obs.Recorder
	if *trace != "" {
		f, cerr := os.Create(*trace)
		if cerr != nil {
			return cerr
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
		if rec, err = obs.New(obs.Options{Sinks: []obs.Sink{obs.NewJSONL(f)}}); err != nil {
			return err
		}
		defer func() {
			if terr := rec.Err(); terr != nil && err == nil {
				err = fmt.Errorf("trace: %w", terr)
				return
			}
			fmt.Fprintf(out, "trace: %d events -> %s\n", rec.Seq(), *trace)
		}()
	}

	kind, err := sim.ParseKind(*topo)
	if err != nil {
		return err
	}
	cfg := sim.Config{
		Kind:         kind,
		Size:         *size,
		Seed:         *seed,
		HostsPerRack: *hostsPerRack,
		VMsPerHost:   *vmsPerHost,
		Migrate:      migrate.Params{Recorder: rec},
	}

	switch *mode {
	case "balance":
		return runBalance(out, cfg, *rounds)
	case "compare":
		return runCompare(out, cfg)
	case "sweep":
		list, err := parseSizes(*sizes, *size)
		if err != nil {
			return err
		}
		for _, sz := range list {
			c := cfg
			c.Size = sz
			if err := runCompare(out, c); err != nil {
				return err
			}
		}
		return nil
	case "plan":
		return runPlan(out, cfg, *k, *p, *exact)
	case "dist":
		return runDist(out, cfg, *loss, rec)
	case "chaos":
		windows, err := parsePartitions(*partition)
		if err != nil {
			return err
		}
		plan := faults.Plan{
			Seed:        *seed,
			Drop:        *drop,
			DupRate:     *dup,
			ReorderRate: *reorder,
			Delay:       *delay,
			Jitter:      *jitter,
			Partitions:  windows,
		}
		return runChaos(out, cfg, plan, rec)
	case "policy":
		return runPolicyGrid(out, cfg, *size, *jsonOut, rec)
	case "scale":
		return runScale(out, sim.ScaleConfig{
			Racks:          *racks,
			Spines:         *spines,
			HostsPerRack:   *hostsPerRack,
			VMsPerHost:     *vmsPerHost,
			Steps:          *steps,
			Shards:         *shards,
			Seed:           *seed,
			DependencyProb: *dep,
			Threshold:      *threshold,
			TraceKind:      *tracesKind,
			Reference:      *reference,
		}, *jsonOut)
	case "surge":
		return runSurge(out, experiments.SurgeConfig{
			Seed:         *seed,
			Hours:        *hours,
			Window:       *window,
			MaxLead:      *maxLead,
			Intensity:    *intensity,
			ClusterRacks: *clusterRacks,
			ClusterSteps: *clusterSteps,
			SkipCluster:  *noCluster,
		}, *jsonOut)
	case "ingest":
		return runIngest(out, experiments.IngestConfig{
			DistillConfig: experiments.DistillConfig{
				Seed:      *seed,
				Hours:     *hours,
				Window:    *window,
				MaxLead:   *maxLead,
				Intensity: *intensity,
				Tolerance: *tolerance,
			},
			BenchRacks:  *benchRacks,
			BenchVMs:    *benchVMs,
			BenchRounds: *benchRounds,
		}, *jsonOut)
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
}

// runSurge prints the regime × candidate early-warning grid (winners
// starred) and the correlated-burst cluster pass; with -json each cell is
// appended as one JSON line, then one summary line with the winners map
// and cluster stats (BENCH_surge.json).
func runSurge(out io.Writer, cfg experiments.SurgeConfig, jsonPath string) error {
	res, err := experiments.RunSurge(cfg)
	if err != nil {
		return err
	}
	for _, c := range res.Cells {
		mark := " "
		if c.Winner {
			mark = "*"
		}
		fmt.Fprintf(out, "surge %-12s %-10s%s mse %9.6f win %4.2f | lead %5.2f prec %4.2f rec %4.2f (episodes %d alerts %d)\n",
			c.Regime, c.Candidate, mark, c.MSE, c.WinShare,
			c.LeadTime, c.Precision, c.Recall, c.Episodes, c.Alerts)
	}
	for _, reg := range []string{"diurnal", "train-wave", "flash-crowd", "rack-burst"} {
		if w, ok := res.Winners[reg]; ok {
			fmt.Fprintf(out, "surge winner %-12s -> %s\n", reg, w)
		}
	}
	if cl := res.Cluster; cl != nil {
		fmt.Fprintf(out, "surge cluster: %d racks %d VMs %d steps (%d in surge) | alerts %d (%d surge / %d calm) alignment %.2f lift %.2f | migrations %d\n",
			cl.Racks, cl.VMs, cl.Steps, cl.SurgeSteps,
			cl.ServerAlerts, cl.SurgeAlerts, cl.CalmAlerts, cl.Alignment, cl.AlertLift, cl.Migrations)
	}
	if jsonPath == "" {
		return nil
	}
	f, err := os.OpenFile(jsonPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	for _, c := range res.Cells {
		if err := enc.Encode(c); err != nil {
			f.Close()
			return err
		}
	}
	summary := struct {
		Config  experiments.SurgeConfig        `json:"config"`
		Winners map[string]string              `json:"winners"`
		Cluster *experiments.SurgeClusterStats `json:"cluster,omitempty"`
	}{res.Config, res.Winners, res.Cluster}
	if err := enc.Encode(summary); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runIngest distills the fixed-point triage filter from the deep pool and
// grades it, printing the per-regime fidelity rows and the two-mode
// service benchmark; with -json the whole report is appended as one JSON
// line (BENCH_ingest.json).
func runIngest(out io.Writer, cfg experiments.IngestConfig, jsonPath string) error {
	res, err := experiments.RunIngest(cfg)
	if err != nil {
		return err
	}
	d := res.Distill
	fmt.Fprintf(out, "ingest distilled: alpha %d/%d beta %d/%d (α %.3f β %.3f) lead %d | fit score %.2f/%d\n",
		d.Coeffs.AlphaNum, int64(1)<<d.Coeffs.Shift, d.Coeffs.BetaNum, int64(1)<<d.Coeffs.Shift,
		d.Coeffs.Alpha(), d.Coeffs.Beta(), d.Coeffs.Lead, d.Score, len(d.Regimes))
	for _, reg := range d.Regimes {
		fmt.Fprintf(out, "ingest %-12s threshold %.3f alert-at %.3f | pool %3d quant %3d matched %3d | prec %4.2f rec %4.2f lead %5.2f (pool %5.2f)\n",
			reg.Regime, reg.Threshold, reg.AlertAt,
			reg.PoolAlerts, reg.QuantAlerts, reg.Matched,
			reg.Precision, reg.Recall, reg.MeanLead, reg.PoolLead)
	}
	for _, p := range []experiments.IngestModePerf{res.Float, res.Quant} {
		fmt.Fprintf(out, "ingest bench %-9s: %10.0f updates/s | p99 %6.1f µs | %.3f allocs/update | alerts %d\n",
			p.Mode, p.UpdatesPerSec, p.P99Micros, p.AllocsPerUpdate, p.Alerts)
	}
	fmt.Fprintf(out, "ingest speedup: %.2fx quantized over float\n", res.Speedup)
	if jsonPath == "" {
		return nil
	}
	f, err := os.OpenFile(jsonPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if err := json.NewEncoder(f).Encode(res); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runPolicyGrid runs the placement-policy ablation: every matching-capable
// policy (sheriff, best-fit, worst-fit, oversub) × topology (fat-tree,
// bcube) × fault plan (none, chaos), each cell through the distributed
// protocol with preemption and the fail-queue enabled. Each row ends with
// its "unplaced N" count and the summary line reports the grid total —
// "total unplaced 0" is the grid's resilience criterion (CI greps for it).
// With -json each cell appends one JSON line (BENCH_policy.json).
func runPolicyGrid(out io.Writer, cfg sim.Config, size int, jsonPath string, rec *obs.Recorder) error {
	var enc *json.Encoder
	if jsonPath != "" {
		f, err := os.OpenFile(jsonPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer f.Close()
		enc = json.NewEncoder(f)
	}
	chaos := &faults.Plan{Seed: cfg.Seed, Drop: 0.1, DupRate: 0.1, ReorderRate: 0.2, Jitter: 1}
	topos := []sim.Kind{sim.FatTree, sim.BCube}
	plans := []struct {
		name string
		plan *faults.Plan
	}{{"none", nil}, {"chaos", chaos}}
	cells, totalUnplaced := 0, 0
	for _, kind := range topos {
		for _, pol := range placement.Kinds() {
			for _, fp := range plans {
				c := cfg
				c.Kind = kind
				c.Size = size
				res, err := sim.RunPolicy(sim.PolicyConfig{
					Sim:         c,
					Policy:      placement.PolicyOptions{Kind: pol, Seed: cfg.Seed},
					Preempt:     migrate.PreemptOptions{Enabled: true},
					Retry:       migrate.RetryOptions{Enabled: true},
					Fault:       fp.plan,
					FaultName:   fp.name,
					Distributed: true,
					Recorder:    rec,
				})
				if err != nil {
					return fmt.Errorf("policy grid %s/%s/%s: %w", pol, kind, fp.name, err)
				}
				cells++
				totalUnplaced += res.Unplaced
				fmt.Fprintf(out, "policy %-9s %-8s %-5s: stddev %6.3f -> %6.3f (decay %5.1f%%) | %3d migrations cost %9.1f | preempt %d requeue %d retry %d | unplaced %d\n",
					res.Policy, res.Topology, res.Fault,
					res.InitialStdDev, res.FinalStdDev, 100*res.StdDevDecay,
					res.Migrations, res.MigrationCost,
					res.Preemptions, res.Requeued, res.Retried, res.Unplaced)
				if enc != nil {
					if err := enc.Encode(res); err != nil {
						return err
					}
				}
			}
		}
	}
	fmt.Fprintf(out, "policy grid: %d cells, total unplaced %d\n", cells, totalUnplaced)
	return nil
}

// runChaos is runDist under a seeded fault plan: the injected drops,
// duplicates, reorderings, and partition cuts exercise the protocol's
// retry/suppression/fallback ladder, and the summary line reports how far
// down the ladder the run went. "unplaced 0" is the resilience criterion.
func runChaos(out io.Writer, cfg sim.Config, plan faults.Plan, rec *obs.Recorder) error {
	s, err := sim.Build(cfg)
	if err != nil {
		return err
	}
	n := s.PopulateHotPods(0.5, 0.85, 0.35)
	fmt.Fprintf(out, "%s size %d: %d racks, %d hosts, %d VMs | plan: drop %.2f dup %.2f reorder %.2f delay %d+%d partitions %d\n",
		cfg.Kind, cfg.Size, len(s.Cluster.Racks), len(s.Cluster.Hosts()), n,
		plan.Drop, plan.DupRate, plan.ReorderRate, plan.Delay, plan.Jitter, len(plan.Partitions))
	res, err := s.RunChaos(plan, migrate.DistOptions{Recorder: rec, Seed: plan.Seed})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "chaos: %d migrations cost %.1f | rejected %d retransmits %d suppressed %d fallbacks %d unplaced %d in %d rounds\n",
		len(res.Migrations), res.TotalCost, res.Rejected, res.Retransmits,
		res.Suppressed, res.Fallbacks, len(res.Unplaced), res.Rounds)
	return nil
}

// parsePartitions decodes the -partition spec: semicolon-separated
// windows, each start:rounds:node,node,... — e.g. "1:3:0,1;6:2:4".
func parsePartitions(spec string) ([]faults.Partition, error) {
	if spec == "" {
		return nil, nil
	}
	var out []faults.Partition
	for i, win := range strings.Split(spec, ";") {
		parts := strings.Split(win, ":")
		if len(parts) != 3 {
			return nil, fmt.Errorf("bad partition %q (want start:rounds:node,node,...)", win)
		}
		start, err := strconv.Atoi(strings.TrimSpace(parts[0]))
		if err != nil {
			return nil, fmt.Errorf("bad partition start %q: %w", parts[0], err)
		}
		rounds, err := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil {
			return nil, fmt.Errorf("bad partition rounds %q: %w", parts[1], err)
		}
		w := faults.Partition{Name: fmt.Sprintf("partition-%d", i), Start: start, Rounds: rounds}
		for _, n := range strings.Split(parts[2], ",") {
			node, err := strconv.Atoi(strings.TrimSpace(n))
			if err != nil {
				return nil, fmt.Errorf("bad partition node %q: %w", n, err)
			}
			w.Nodes = append(w.Nodes, node)
		}
		out = append(out, w)
	}
	return out, nil
}

// runDist drives the Alg. 4 message protocol: pod-level hotspots force
// cross-rack placement, the lossy bus forces retries, and every REQUEST,
// ACK, REJECT, and timeout retry lands in the trace with its round number.
func runDist(out io.Writer, cfg sim.Config, loss float64, rec *obs.Recorder) error {
	s, err := sim.Build(cfg)
	if err != nil {
		return err
	}
	n := s.PopulateHotPods(0.5, 0.85, 0.35)
	fmt.Fprintf(out, "%s size %d: %d racks, %d hosts, %d VMs, loss %.3f\n",
		cfg.Kind, cfg.Size, len(s.Cluster.Racks), len(s.Cluster.Hosts()), n, loss)
	res, err := s.RunDistributed(
		comm.Options{LossRate: loss, Seed: cfg.Seed, Recorder: rec},
		migrate.DistOptions{Recorder: rec},
	)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "dist: %d migrations cost %.1f | rejected %d retransmits %d unplaced %d in %d rounds (space %d)\n",
		len(res.Migrations), res.TotalCost, res.Rejected, res.Retransmits, len(res.Unplaced), res.Rounds, res.SearchSpace)
	return nil
}

func runBalance(out io.Writer, cfg sim.Config, rounds int) error {
	s, err := sim.Build(cfg)
	if err != nil {
		return err
	}
	n := s.PopulateSkewed(0.5)
	fmt.Fprintf(out, "%s size %d: %d racks, %d hosts, %d VMs\n",
		cfg.Kind, cfg.Size, len(s.Cluster.Racks), len(s.Cluster.Hosts()), n)
	series, err := s.RunBalancing(rounds, 0.05)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, "round  workload-stddev(%)")
	for i, sd := range series {
		fmt.Fprintf(out, "%5d  %8.3f\n", i, sd)
	}
	fmt.Fprintf(out, "reduction: %.1f%% -> %.1f%% over %d rounds\n",
		series[0], series[len(series)-1], rounds)
	return nil
}

func runCompare(out io.Writer, cfg sim.Config) error {
	res, err := sim.Compare(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s size %-3d racks %-5d VMs %-6d alerted %-4d | sheriff cost %10.1f space %8d | central cost %10.1f space %8d\n",
		cfg.Kind, cfg.Size, res.Racks, res.VMs, res.Alerted,
		res.SheriffCost, res.SheriffSpace, res.CentralCost, res.CentralSpace)
	return nil
}

func runPlan(out io.Writer, cfg sim.Config, k, p int, exact bool) error {
	res, err := sim.ComparePlanning(cfg, k, p, exact)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%s size %-3d racks %-5d clients %-4d k %-4d | local-search cost %10.1f swaps %4d in %v",
		cfg.Kind, cfg.Size, res.Racks, res.Clients, res.K, res.LocalCost, res.LocalSwaps, res.LocalTime.Round(time.Microsecond))
	if res.HasExact {
		fmt.Fprintf(out, " | optimal cost %10.1f in %v (ratio %.4f)",
			res.ExactCost, res.ExactTime.Round(time.Microsecond), res.Ratio())
	}
	fmt.Fprintln(out)
	return nil
}

// runScale drives one hyperscale step-engine scenario and prints the
// scaling-curve point; with -json the result is appended as one JSON line
// so a sweep accumulates into a JSONL dataset (BENCH_scale.json).
func runScale(out io.Writer, cfg sim.ScaleConfig, jsonPath string) error {
	res, err := sim.RunScale(cfg)
	if err != nil {
		return err
	}
	engine := "sharded"
	if cfg.Reference {
		engine = "reference"
	}
	fmt.Fprintf(out, "scale %s: %d racks %d hosts %d VMs | %d steps in %.2fs (%.1f ms/step, max %.1f) | %.0f allocs/step %.1f MB peak RSS | alerts %d/%d migrations %d\n",
		engine, res.Racks, res.Hosts, res.VMs, res.Steps, res.TotalSeconds,
		res.MeanStepSeconds*1e3, res.MaxStepSeconds*1e3,
		res.AllocsPerStep, res.PeakRSSMB, res.ServerAlerts, res.ToRAlerts, res.Migrations)
	if jsonPath == "" {
		return nil
	}
	f, err := os.OpenFile(jsonPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	if err := enc.Encode(res); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func parseSizes(csv string, fallback int) ([]int, error) {
	if csv == "" {
		return []int{fallback}, nil
	}
	parts := strings.Split(csv, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad size %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}
