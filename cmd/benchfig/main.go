// Command benchfig regenerates the paper's figures as text tables.
//
// Usage:
//
//	benchfig                # every figure, Figs. 3–14
//	benchfig -fig 11        # one figure
//	benchfig -ablation swap-size
//	benchfig -seed 42       # change the deterministic seed
//	benchfig -summary       # one line per figure instead of full tables
package main

import (
	"flag"
	"fmt"
	"os"

	"sheriff/internal/experiments"
)

func main() {
	fig := flag.String("fig", "", "figure to regenerate (3..14); empty = all")
	ablation := flag.String("ablation", "", "ablation to run (swap-size, model-selection, priority, region-size)")
	seed := flag.Int64("seed", 20150707, "deterministic seed")
	summary := flag.Bool("summary", false, "print only headers and notes, not data rows")
	flag.Parse()

	if *ablation != "" {
		gen, ok := experiments.Ablations[*ablation]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchfig: unknown ablation %q\n", *ablation)
			os.Exit(2)
		}
		emit(gen, *seed, *summary)
		return
	}
	ids := experiments.FigureIDs()
	if *fig != "" {
		ids = []string{*fig}
	}
	for _, id := range ids {
		gen, ok := experiments.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchfig: unknown figure %q\n", id)
			os.Exit(2)
		}
		emit(gen, *seed, *summary)
	}
}

func emit(gen func(int64) (*experiments.Table, error), seed int64, summary bool) {
	tab, err := gen(seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchfig: %v\n", err)
		os.Exit(1)
	}
	if summary {
		fmt.Printf("%s — %s (%d rows)\n", tab.Name, tab.Title, len(tab.Rows))
		for _, n := range tab.Notes {
			fmt.Printf("  # %s\n", n)
		}
		return
	}
	if _, err := tab.WriteTo(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "benchfig: write: %v\n", err)
		os.Exit(1)
	}
	fmt.Println()
}
