// Command benchfig regenerates the paper's figures as text tables.
//
// Usage:
//
//	benchfig                # every figure, Figs. 3–14
//	benchfig -fig 11        # one figure
//	benchfig -ablation swap-size
//	benchfig -seed 42       # change the deterministic seed
//	benchfig -summary       # one line per figure instead of full tables
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"sheriff/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "benchfig: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchfig", flag.ContinueOnError)
	fig := fs.String("fig", "", "figure to regenerate (3..14); empty = all")
	ablation := fs.String("ablation", "", "ablation to run (swap-size, model-selection, priority, region-size)")
	seed := fs.Int64("seed", 20150707, "deterministic seed")
	summary := fs.Bool("summary", false, "print only headers and notes, not data rows")
	if perr := fs.Parse(args); perr != nil {
		if errors.Is(perr, flag.ErrHelp) {
			return nil
		}
		return perr
	}

	if *ablation != "" {
		gen, ok := experiments.Ablations[*ablation]
		if !ok {
			return fmt.Errorf("unknown ablation %q", *ablation)
		}
		return emit(out, gen, *seed, *summary)
	}
	ids := experiments.FigureIDs()
	if *fig != "" {
		ids = []string{*fig}
	}
	for _, id := range ids {
		gen, ok := experiments.Registry[id]
		if !ok {
			return fmt.Errorf("unknown figure %q", id)
		}
		if err := emit(out, gen, *seed, *summary); err != nil {
			return err
		}
	}
	return nil
}

func emit(out io.Writer, gen func(int64) (*experiments.Table, error), seed int64, summary bool) error {
	tab, err := gen(seed)
	if err != nil {
		return err
	}
	if summary {
		fmt.Fprintf(out, "%s — %s (%d rows)\n", tab.Name, tab.Title, len(tab.Rows))
		for _, n := range tab.Notes {
			fmt.Fprintf(out, "  # %s\n", n)
		}
		return nil
	}
	if _, err := tab.WriteTo(out); err != nil {
		return fmt.Errorf("write: %w", err)
	}
	fmt.Fprintln(out)
	return nil
}
