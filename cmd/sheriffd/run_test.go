package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sheriff/internal/obs"
)

// stepLines extracts the per-step status lines (those starting with a
// step number) from a run's output.
func stepLines(out string) []string {
	var lines []string
	for _, l := range strings.Split(out, "\n") {
		t := strings.TrimSpace(l)
		if t == "" {
			continue
		}
		if t[0] >= '0' && t[0] <= '9' {
			lines = append(lines, t)
		}
	}
	return lines
}

// parseTrace decodes every line of a JSONL trace, failing on any corrupt
// line, and returns the events.
func parseTrace(t *testing.T, path string) []obs.Event {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var events []obs.Event
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var e obs.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("corrupt trace line %d: %v\n%s", len(events)+1, err, sc.Text())
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

// TestRunSnapshotRestartContinuesExactly is the daemon warm-restart
// acceptance test: a run killed after K steps and restarted from its
// snapshot must produce, step for step, the same status lines as one
// uninterrupted run — forecasting resumed from warm state, not re-fit.
func TestRunSnapshotRestartContinuesExactly(t *testing.T) {
	dir := t.TempDir()
	base := []string{"-size", "4", "-hosts", "2", "-vms", "2", "-seed", "9", "-deep"}

	var full bytes.Buffer
	if err := run(append([]string{"-steps", "10"}, base...), &full); err != nil {
		t.Fatal(err)
	}

	snap := filepath.Join(dir, "daemon.snap")
	var first bytes.Buffer
	if err := run(append([]string{"-steps", "6", "-snapshot", snap, "-snapshot-every", "4"}, base...), &first); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("shutdown flush left no snapshot: %v", err)
	}
	var second bytes.Buffer
	if err := run(append([]string{"-steps", "4", "-snapshot", snap}, base...), &second); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(second.String(), "resumed from") {
		t.Fatalf("second run did not resume from the snapshot:\n%s", second.String())
	}

	want := stepLines(full.String())
	got := append(stepLines(first.String()), stepLines(second.String())...)
	if len(want) != 10 || len(got) != 10 {
		t.Fatalf("step line counts: uninterrupted %d, split %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("step %d diverged after restart:\n uninterrupted: %s\n split:         %s", i, want[i], got[i])
		}
	}
}

// TestRunSnapshotConfigMismatch pins the refusal to resume a snapshot
// under different build flags.
func TestRunSnapshotConfigMismatch(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "daemon.snap")
	var out bytes.Buffer
	if err := run([]string{"-size", "4", "-steps", "2", "-snapshot", snap}, &out); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-size", "4", "-steps", "2", "-seed", "2", "-snapshot", snap}, &out)
	if err == nil || !strings.Contains(err.Error(), "different configuration") {
		t.Fatalf("mismatched resume err = %v", err)
	}
}

// TestRunFailStepLeavesParseableTrace is the crash-safe trace
// acceptance test: an injected mid-run error must still leave a closed,
// fully parseable JSONL trace with the events recorded up to the
// failure.
func TestRunFailStepLeavesParseableTrace(t *testing.T) {
	dir := t.TempDir()
	tr := filepath.Join(dir, "run.jsonl")
	var out bytes.Buffer
	err := run([]string{"-size", "4", "-steps", "20", "-trace", tr, "-fail-step", "2"}, &out)
	if err == nil || !strings.Contains(err.Error(), "injected failure") {
		t.Fatalf("run error = %v, want injected failure", err)
	}
	events := parseTrace(t, tr)
	if len(events) == 0 {
		t.Fatal("trace is empty")
	}
	var ingestEvents, phaseEvents int
	for _, e := range events {
		switch e.Kind {
		case obs.KindIngest:
			ingestEvents++
		case obs.KindPhase:
			phaseEvents++
		}
	}
	if ingestEvents == 0 || phaseEvents == 0 {
		t.Fatalf("trace missing event kinds: ingest=%d phase=%d", ingestEvents, phaseEvents)
	}
}

func TestRunFlagErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-topology", "nope"}, &out); err == nil {
		t.Fatal("unknown topology accepted")
	}
	if err := run([]string{"-badflag"}, &out); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run([]string{"-h"}, &out); err != nil {
		t.Fatalf("-h should not be an error, got %v", err)
	}
}
