// Command sheriffd runs the assembled Sheriff system as an ingest/serving
// daemon in simulated time: per collection period it ingests every VM's
// workload profile through the rack-sharded ingest front end (triage
// pre-alerts, tail-drop backpressure), drives the full runtime pipeline
// from those same profiles, and prints one status line per step.
//
// With -snapshot the daemon is crash-safe: the file is restored at
// startup if present (forecasting resumes incrementally — warm per-VM
// histories, fitted deep pools, exact flow state — instead of
// cold-fitting), rewritten atomically every -snapshot-every steps, and
// flushed on SIGINT/SIGTERM or normal exit. With -listen it serves the
// live JSONL event stream to TCP subscribers, who attach and detach
// without disturbing the run. -trace writes the same stream to a file;
// the trace is closed and parseable even when the run fails mid-way.
//
// Usage:
//
//	sheriffd -topology fat-tree -size 8 -steps 50
//	sheriffd -size 8 -steps 20 -trace run.jsonl -snapshot run.snap
//	sheriffd -size 8 -steps 30 -deep -listen 127.0.0.1:7070
//	sheriffd -size 8 -steps 30 -triage quantized
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"

	"sheriff/internal/ingest"
	"sheriff/internal/obs"
	"sheriff/internal/runtime"
	"sheriff/internal/sim"
	"sheriff/internal/traces"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "sheriffd: %v\n", err)
		os.Exit(1)
	}
}

// daemonState is the on-disk snapshot: the build configuration (so a
// restore with different flags fails loudly instead of diverging
// silently) plus the runtime and ingest states.
type daemonState struct {
	Config  sim.RuntimeConfig `json:"config"`
	Deep    bool              `json:"deep"`
	Runtime *runtime.Snapshot `json:"runtime"`
	Ingest  *ingest.Snapshot  `json:"ingest"`
}

// run is the whole daemon behind a returned error so deferred cleanup —
// closing the trace, flushing counters — always fires; main's only job
// is the exit code. A -fail-step failure therefore still leaves a
// closed, parseable trace.
func run(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("sheriffd", flag.ContinueOnError)
	topo := fs.String("topology", "fat-tree", "fat-tree or bcube")
	size := fs.Int("size", 8, "pods (fat-tree) or switches per level (bcube)")
	steps := fs.Int("steps", 50, "collection periods to run in this invocation")
	hostsPerRack := fs.Int("hosts", 2, "hosts per rack")
	vmsPerHost := fs.Int("vms", 3, "VMs per host")
	depProb := fs.Float64("deps", 0.5, "dependency probability between VM pairs")
	seed := fs.Int64("seed", 1, "simulation seed")
	trace := fs.String("trace", "", "write a JSONL event trace of every step to this file")
	snapshot := fs.String("snapshot", "", "snapshot file: restored at startup if present, rewritten periodically and on shutdown")
	snapEvery := fs.Int("snapshot-every", 10, "steps between periodic snapshots (with -snapshot)")
	listen := fs.String("listen", "", "serve the live JSONL event stream to TCP subscribers on this address")
	deep := fs.Bool("deep", false, "enable per-rack deep forecasting pools (ARIMA/NARNET dynamic selection)")
	tracesKind := fs.String("traces", "", "trace-generator family: diurnal, lite, surge, surge-lite (\"\" = diurnal)")
	triage := fs.String("triage", "", "ingest triage arithmetic: float or quantized (\"\" = float); snapshots restore across modes")
	failStep := fs.Int("fail-step", 0, "inject a failure after this step (testing the crash-safe trace path)")
	shards := fs.Int("shards", 0, "step-engine shard workers (0 = number of CPUs)")
	historyLimit := fs.Int("history-limit", 0, "retain only the last N steps of in-memory stats (0 = unbounded)")
	if perr := fs.Parse(args); perr != nil {
		if errors.Is(perr, flag.ErrHelp) {
			return nil
		}
		return perr
	}
	kind, err := sim.ParseKind(*topo)
	if err != nil {
		return err
	}
	tkind, err := traces.ParseKind(*tracesKind)
	if err != nil {
		return err
	}
	tmode, err := ingest.ParseTriageMode(*triage)
	if err != nil {
		return err
	}
	// Normalize so "-traces diurnal" and the default spell the config
	// identity the same way (and pre-existing snapshots keep matching).
	traceKind := ""
	if tkind != traces.Diurnal {
		traceKind = tkind.String()
	}
	cfg := sim.RuntimeConfig{
		Kind:           kind,
		Size:           *size,
		HostsPerRack:   *hostsPerRack,
		VMsPerHost:     *vmsPerHost,
		DependencyProb: *depProb,
		Seed:           *seed,
		TraceKind:      traceKind,
	}

	var rec *obs.Recorder
	if *trace != "" || *listen != "" {
		var sinks []obs.Sink
		if *trace != "" {
			f, cerr := os.Create(*trace)
			if cerr != nil {
				return cerr
			}
			defer func() {
				if cerr := f.Close(); cerr != nil && err == nil {
					err = cerr
				}
			}()
			sinks = append(sinks, obs.NewJSONL(f))
		}
		if rec, err = obs.New(obs.Options{Sinks: sinks}); err != nil {
			return err
		}
		defer func() {
			if terr := rec.Err(); terr != nil && err == nil {
				err = fmt.Errorf("trace: %w", terr)
				return
			}
			if *trace != "" {
				var kinds []string
				for _, k := range rec.Kinds() {
					kinds = append(kinds, fmt.Sprintf("%s=%d", k, rec.Count(k)))
				}
				fmt.Fprintf(out, "trace: %d events -> %s (%s)\n", rec.Seq(), *trace, strings.Join(kinds, " "))
			}
		}()
	}

	rtOpts := runtime.Options{Seed: cfg.Seed, Recorder: rec, DeepPredict: *deep,
		Shards: *shards, HistoryLimit: *historyLimit,
		Traces: traces.Options{Kind: tkind}}
	inOpts := ingest.Options{Recorder: rec, Mode: tmode}

	// Restore from the snapshot file when it exists; build fresh otherwise.
	var rt *runtime.Runtime
	var svc *ingest.Service
	startStep := 0
	if *snapshot != "" {
		blob, rerr := os.ReadFile(*snapshot)
		switch {
		case rerr == nil:
			var st daemonState
			if uerr := json.Unmarshal(blob, &st); uerr != nil {
				return fmt.Errorf("snapshot %s: %w", *snapshot, uerr)
			}
			if st.Config != cfg || st.Deep != *deep {
				return fmt.Errorf("snapshot %s was taken with a different configuration; refusing to resume", *snapshot)
			}
			cluster, model, berr := sim.BuildCluster(cfg)
			if berr != nil {
				return berr
			}
			if cerr := cluster.Restore(st.Runtime.Cluster); cerr != nil {
				return fmt.Errorf("snapshot %s: %w", *snapshot, cerr)
			}
			if rt, err = runtime.Restore(cluster, model, rtOpts, st.Runtime); err != nil {
				return fmt.Errorf("snapshot %s: %w", *snapshot, err)
			}
			if svc, err = ingest.FromSnapshot(st.Ingest, inOpts); err != nil {
				return fmt.Errorf("snapshot %s: %w", *snapshot, err)
			}
			startStep = st.Runtime.Step
			fmt.Fprintf(out, "sheriffd: resumed from %s at step %d (no cold fit)\n", *snapshot, startStep)
		case errors.Is(rerr, os.ErrNotExist):
			// fresh start below
		default:
			return rerr
		}
	}
	if rt == nil {
		if rt, err = sim.BuildRuntime(cfg, rtOpts); err != nil {
			return err
		}
		if svc, err = ingest.FromCluster(rt.Cluster, inOpts); err != nil {
			return err
		}
	}
	defer rt.Close()

	// The metric reporters: one deterministic stream per VM from the
	// runtime's trace generator (so -traces picks the family and surge
	// kinds keep their rack-correlated bursts), replayed to the resume
	// point so a restored daemon sees the same tail of profiles the
	// uninterrupted one would have.
	vms := rt.Cluster.VMs()
	sort.Slice(vms, func(i, j int) bool { return vms[i].ID < vms[j].ID })
	tgen := rt.TraceGen()
	gens := make([]traces.Source, len(vms))
	for i, vm := range vms {
		gens[i] = tgen.Source(vm.ID, vm.Host().Rack().Index)
		gens[i].Skip(startStep)
	}

	if *listen != "" {
		ln, lerr := net.Listen("tcp", *listen)
		if lerr != nil {
			return lerr
		}
		defer ln.Close()
		fmt.Fprintf(out, "sheriffd: streaming events on %s\n", ln.Addr())
		go serveSubscribers(ln, svc)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	writeSnap := func() error {
		rs, serr := rt.Snapshot()
		if serr != nil {
			return serr
		}
		is, serr := svc.Snapshot()
		if serr != nil {
			return serr
		}
		blob, serr := json.Marshal(daemonState{Config: cfg, Deep: *deep, Runtime: rs, Ingest: is})
		if serr != nil {
			return serr
		}
		tmp := *snapshot + ".tmp"
		if werr := os.WriteFile(tmp, blob, 0o644); werr != nil {
			return werr
		}
		return os.Rename(tmp, *snapshot)
	}

	fmt.Fprintf(out, "sheriffd: %s size %d — %d racks, %d hosts, %d VMs, %d dependency edges\n",
		*topo, *size, len(rt.Cluster.Racks), len(rt.Cluster.Hosts()), len(vms), rt.Cluster.Deps.NumEdges())
	fmt.Fprintln(out, "step  pre-alerts srv-alerts tor-alerts sw-alerts  migr     cost  reroutes  hot  stddev  maxuplink")

	var totalMigr, totalReroutes, totalPre int
	var totalCost float64
	updates := make([]ingest.Update, 0, len(vms))
	ext := make([]runtime.ExternalUpdate, 0, len(vms))
loop:
	for i := 0; i < *steps; i++ {
		select {
		case <-sig:
			fmt.Fprintln(out, "sheriffd: signal received, flushing and shutting down")
			break loop
		default:
		}
		updates = updates[:0]
		ext = ext[:0]
		for j, vm := range vms {
			p := gens[j].Next()
			updates = append(updates, ingest.Update{VM: vm.ID, Profile: p})
			ext = append(ext, runtime.ExternalUpdate{VM: vm.ID, Profile: p})
		}
		if _, err = svc.OfferBatch(updates); err != nil {
			return err
		}
		svc.ProcessPending()
		pre := svc.Poll()
		totalPre += len(pre)
		s, serr := rt.StepExternal(ext)
		if serr != nil {
			return serr
		}
		totalMigr += s.Migrations
		totalReroutes += s.Reroutes
		totalCost += s.MigrationCost
		fmt.Fprintf(out, "%4d  %10d %10d %10d %9d %5d %8.1f %9d %4d %7.2f %10.2f\n",
			s.Step, len(pre), s.ServerAlerts, s.ToRAlerts, s.SwitchAlerts,
			s.Migrations, s.MigrationCost, s.Reroutes, s.HotSwitches,
			s.WorkloadStdDev, s.MaxUplinkUtil)
		if *snapshot != "" && *snapEvery > 0 && (i+1)%*snapEvery == 0 {
			if werr := writeSnap(); werr != nil {
				return werr
			}
		}
		if *failStep > 0 && s.Step >= *failStep {
			return fmt.Errorf("injected failure after step %d (testing)", s.Step)
		}
	}
	if *snapshot != "" {
		if werr := writeSnap(); werr != nil {
			return werr
		}
		fmt.Fprintf(out, "snapshot: %s\n", *snapshot)
	}
	st := svc.Stats()
	fmt.Fprintf(out, "totals: %d migrations (cost %.1f), %d flow reroutes, %d pre-alerts\n",
		totalMigr, totalCost, totalReroutes, totalPre)
	fmt.Fprintf(out, "ingest: %d offered %d accepted %d dropped %d processed | latency mean %.1fµs p99 %.1fµs\n",
		st.Offered, st.Accepted, st.Dropped, st.Processed, st.Latency.Mean()*1e6, st.LatencyP99*1e6)
	return nil
}

// serveSubscribers attaches each TCP client to the live event stream.
// A client that hangs up (or whose writes fail) is detached without
// disturbing the recorder or other subscribers.
func serveSubscribers(ln net.Listener, svc *ingest.Service) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		sub, err := svc.Subscribe(obs.NewJSONL(conn))
		if err != nil {
			conn.Close()
			continue
		}
		go func() {
			io.Copy(io.Discard, conn) // block until the client hangs up
			svc.Unsubscribe(sub)
			conn.Close()
		}()
	}
}
