// Command sheriffd runs the assembled Sheriff system in simulated time:
// per period it collects workload profiles, forecasts, raises pre-alerts,
// reroutes flows around hot switches, and migrates VMs — printing one
// status line per step.
//
// Usage:
//
//	sheriffd -topology fat-tree -size 8 -steps 50
//	sheriffd -topology bcube -size 6 -steps 30 -hosts 2 -vms 3
//	sheriffd -size 8 -steps 20 -trace run.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sheriff/internal/cost"
	"sheriff/internal/dcn"
	"sheriff/internal/metrics"
	"sheriff/internal/obs"
	"sheriff/internal/runtime"
	"sheriff/internal/topology"
)

func main() {
	topo := flag.String("topology", "fat-tree", "fat-tree or bcube")
	size := flag.Int("size", 8, "pods (fat-tree) or switches per level (bcube)")
	steps := flag.Int("steps", 50, "collection periods to simulate")
	hostsPerRack := flag.Int("hosts", 2, "hosts per rack")
	vmsPerHost := flag.Int("vms", 3, "VMs per host")
	depProb := flag.Float64("deps", 0.5, "dependency probability between VM pairs")
	seed := flag.Int64("seed", 1, "simulation seed")
	trace := flag.String("trace", "", "write a JSONL event trace of every step to this file")
	flag.Parse()

	var rec *obs.Recorder
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		rec, err = obs.New(obs.Options{Sinks: []obs.Sink{obs.NewJSONL(f)}})
		if err != nil {
			fail(err)
		}
		defer func() {
			if err := rec.Err(); err != nil {
				fail(fmt.Errorf("trace: %w", err))
			}
			var kinds []string
			for _, k := range rec.Kinds() {
				kinds = append(kinds, fmt.Sprintf("%s=%d", k, rec.Count(k)))
			}
			fmt.Printf("trace: %d events -> %s (%s)\n", rec.Seq(), *trace, strings.Join(kinds, " "))
		}()
	}

	var g *topology.Graph
	switch strings.ToLower(*topo) {
	case "fat-tree", "fattree", "ft":
		ft, err := topology.NewFatTree(topology.FatTreeConfig{Pods: *size})
		if err != nil {
			fail(err)
		}
		g = ft.Graph
	case "bcube", "bc":
		b, err := topology.NewBCube(topology.BCubeConfig{SwitchesPerLevel: *size})
		if err != nil {
			fail(err)
		}
		g = b.Graph
	default:
		fail(fmt.Errorf("unknown topology %q", *topo))
	}

	cluster, err := dcn.NewCluster(g, dcn.Config{
		HostsPerRack: *hostsPerRack,
		HostCapacity: 100,
		ToRCapacity:  100 * float64(*hostsPerRack),
	})
	if err != nil {
		fail(err)
	}
	n := cluster.Populate(dcn.PopulateOptions{
		VMsPerHost:              *vmsPerHost,
		MinCapacity:             5,
		MaxCapacity:             20,
		DependencyProb:          *depProb,
		CrossRackDependencyProb: *depProb,
		Seed:                    *seed,
	})
	model, err := cost.New(cluster, cost.PaperParams())
	if err != nil {
		fail(err)
	}
	rt, err := runtime.New(cluster, model, runtime.Options{Seed: *seed, Recorder: rec})
	if err != nil {
		fail(err)
	}
	fmt.Printf("sheriffd: %s size %d — %d racks, %d hosts, %d VMs, %d dependency edges\n",
		*topo, *size, len(cluster.Racks), len(cluster.Hosts()), n, cluster.Deps.NumEdges())
	fmt.Println("step  srv-alerts tor-alerts sw-alerts  migr     cost  reroutes  hot  stddev  maxuplink")

	var totalMigr, totalReroutes int
	var totalCost float64
	var sdSummary, uplinkSummary metrics.Summary
	uplinkP95, err := metrics.NewQuantile(0.95)
	if err != nil {
		fail(err)
	}
	for i := 0; i < *steps; i++ {
		s, err := rt.Step()
		if err != nil {
			fail(err)
		}
		totalMigr += s.Migrations
		totalReroutes += s.Reroutes
		totalCost += s.MigrationCost
		sdSummary.Observe(s.WorkloadStdDev)
		uplinkSummary.Observe(s.MaxUplinkUtil)
		uplinkP95.Observe(s.MaxUplinkUtil)
		fmt.Printf("%4d  %10d %10d %9d %5d %8.1f %9d %4d %7.2f %10.2f\n",
			s.Step, s.ServerAlerts, s.ToRAlerts, s.SwitchAlerts,
			s.Migrations, s.MigrationCost, s.Reroutes, s.HotSwitches,
			s.WorkloadStdDev, s.MaxUplinkUtil)
	}
	fmt.Printf("totals: %d migrations (cost %.1f), %d flow reroutes over %d steps\n",
		totalMigr, totalCost, totalReroutes, *steps)
	fmt.Printf("workload stddev: %s\n", sdSummary.String())
	fmt.Printf("max uplink util: %s p95=%.3f\n", uplinkSummary.String(), uplinkP95.Value())
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "sheriffd: %v\n", err)
	os.Exit(1)
}
