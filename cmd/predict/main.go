// Command predict runs Sheriff's prediction phase on a workload trace:
// it generates (or reads) a series, fits the candidate models, runs the
// dynamic-selection rolling forecast over the test split, and reports
// per-model and combined errors.
//
// Usage:
//
//	predict                     # weekly-traffic trace, default split
//	predict -trace cpu          # diurnal CPU trace
//	predict -trace io           # bursty disk I/O trace
//	predict -file data.txt      # newline-separated float series
//	predict -split 0.5 -seed 7
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"sheriff/internal/arima"
	"sheriff/internal/narnet"
	"sheriff/internal/predictor"
	"sheriff/internal/timeseries"
	"sheriff/internal/traces"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "predict: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("predict", flag.ContinueOnError)
	trace := fs.String("trace", "traffic", "synthetic trace: traffic, cpu, io")
	file := fs.String("file", "", "read the series from a file instead (one float per line)")
	split := fs.Float64("split", 0.7, "train fraction")
	seed := fs.Int64("seed", 1, "generator / trainer seed")
	horizon := fs.Int("horizon", 5, "closing k-step-ahead forecast horizon")
	if perr := fs.Parse(args); perr != nil {
		if errors.Is(perr, flag.ErrHelp) {
			return nil
		}
		return perr
	}

	series, err := loadSeries(*file, *trace, *seed)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, traces.Describe("series", series))

	train, test := series.Split(*split)
	if test.Len() == 0 {
		return errors.New("empty test split")
	}

	// Detect a dominant season and hand it to the extended pool, which
	// adds Holt and Holt–Winters beside the ARIMA/NARNET candidates.
	period := timeseries.DetectPeriod(train, 4, train.Len()/3)
	if period > 0 {
		fmt.Fprintf(out, "detected season length: %d samples\n", period)
	}
	pool, err := predictor.ExtendedPool(train, period, *seed)
	if err != nil {
		return fmt.Errorf("building pool: %w", err)
	}
	fmt.Fprintf(out, "candidates: ")
	for i, c := range pool {
		if i > 0 {
			fmt.Fprint(out, ", ")
		}
		fmt.Fprint(out, c.Name)
	}
	fmt.Fprintln(out)

	// Individual rolling forecasts.
	for _, c := range pool {
		pred := rolling(c.F, train, test)
		if pred == nil {
			fmt.Fprintf(out, "%-16s rolling forecast failed\n", c.Name)
			continue
		}
		mse, _ := timeseries.MSE(test.Raw(), pred)
		mae, _ := timeseries.MAE(test.Raw(), pred)
		fmt.Fprintf(out, "%-16s test MSE %10.4f  MAE %8.4f\n", c.Name, mse, mae)
	}

	// Combined dynamic selection.
	sel, err := predictor.NewSelector(train, predictor.Config{Window: 15}, pool...)
	if err != nil {
		return err
	}
	combined, shares, err := sel.Run(test)
	if err != nil {
		return fmt.Errorf("selector: %w", err)
	}
	mse, _ := timeseries.MSE(test.Raw(), combined)
	fmt.Fprintf(out, "%-16s test MSE %10.4f  selection shares %v\n", "combined", mse, shares)

	// Closing k-step-ahead forecast from the full series.
	best, err := arima.AutoFit(series, arima.DefaultSearchSpace)
	if err == nil {
		fc, ferr := best.Forecast(*horizon)
		if ferr == nil {
			fmt.Fprintf(out, "%s %d-step-ahead: %v\n", best.Order, *horizon, round2(fc))
		}
	}
	return nil
}

func rolling(f predictor.Forecaster, train, test *timeseries.Series) []float64 {
	type roller interface {
		RollingForecast(train, test *timeseries.Series) ([]float64, error)
	}
	switch m := f.(type) {
	case *arima.Model:
		out, err := m.RollingForecast(train, test)
		if err != nil {
			return nil
		}
		return out
	case *narnet.Network:
		out, err := m.RollingForecast(train, test)
		if err != nil {
			return nil
		}
		return out
	case roller:
		out, err := m.RollingForecast(train, test)
		if err != nil {
			return nil
		}
		return out
	default:
		return nil
	}
}

func loadSeries(file, trace string, seed int64) (*timeseries.Series, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		// Two accepted layouts: tracegen's "t,value" CSV, or one float
		// per line. Sniff the first non-comment line for a comma.
		var data []float64
		sc := bufio.NewScanner(f)
		csv := false
		first := true
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			if first {
				first = false
				if strings.Contains(line, ",") {
					csv = true
				}
			}
			if csv {
				break // re-read through the CSV parser below
			}
			v, err := strconv.ParseFloat(line, 64)
			if err != nil {
				return nil, fmt.Errorf("parsing %q: %w", line, err)
			}
			data = append(data, v)
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
		if csv {
			if _, err := f.Seek(0, 0); err != nil {
				return nil, err
			}
			return traces.ReadCSV(f)
		}
		return timeseries.New(data), nil
	}
	switch trace {
	case "traffic":
		return traces.WeeklyTraffic(traces.TrafficConfig{Days: 7, PerDay: 64, Seed: seed}), nil
	case "cpu":
		return traces.CPU(traces.CPUConfig{Hours: 24, Seed: seed}), nil
	case "io":
		return traces.DiskIO(traces.DiskIOConfig{Hours: 24, Seed: seed}), nil
	default:
		return nil, fmt.Errorf("unknown trace %q (want traffic, cpu, io)", trace)
	}
}

func round2(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = float64(int(x*100+0.5)) / 100
	}
	return out
}
