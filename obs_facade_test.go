package sheriff

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"sheriff/internal/dcn"
)

func populateForTest(c *Cluster, seed int64) {
	c.Populate(dcn.PopulateOptions{VMsPerHost: 3, MinCapacity: 5, MaxCapacity: 20, DependencyProb: 0.3, Seed: seed})
}

// TestTraceToFacade drives a small runtime through the facade trace
// helper and checks the JSONL stream parses back into Events in sequence
// order.
func TestTraceToFacade(t *testing.T) {
	var buf bytes.Buffer
	rec, err := TraceTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cluster, model, _, err := NewFatTreeCluster(4, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	populateForTest(cluster, 1)
	rt, err := NewRuntime(cluster, model, RuntimeOptions{Seed: 1, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(5); err != nil {
		t.Fatal(err)
	}
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}
	if rec.Seq() == 0 {
		t.Fatal("no events recorded")
	}
	sc := bufio.NewScanner(&buf)
	var prev uint64
	lines := 0
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d: %v", lines+1, err)
		}
		if e.Seq <= prev {
			t.Fatalf("line %d: seq %d after %d", lines+1, e.Seq, prev)
		}
		prev = e.Seq
		lines++
	}
	if uint64(lines) != rec.Seq() {
		t.Fatalf("trace has %d lines, recorder says %d events", lines, rec.Seq())
	}
}

// TestSetRequestPolicyFacade checks the per-shim admission hook — the
// replacement for the removed process-wide SetRequestGate — blocks
// migrations when installed after assembly and stops blocking when
// cleared, without leaking into other shims.
func TestSetRequestPolicyFacade(t *testing.T) {
	cluster, _, shims, err := NewFatTreeCluster(4, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	populateForTest(cluster, 1)
	shims[0].SetRequestPolicy(func(*VM, *Host) bool { return false })

	var alerts []Alert
	rack := shims[0].Rack
	h := rack.Hosts[0]
	for _, vm := range h.VMs() {
		vm.Alert = 0.95
	}
	alerts = append(alerts, Alert{HostID: h.ID, RackIndex: rack.Index, Value: 0.95})
	rep, err := shims[0].ProcessAlerts(alerts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Migrations) != 0 {
		t.Fatalf("policy did not block: %d migrations", len(rep.Migrations))
	}
	shims[0].SetRequestPolicy(nil)
	rep, err = shims[0].ProcessAlerts(alerts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Migrations) == 0 {
		t.Fatal("no migrations after clearing the policy")
	}
}

// TestKindNamesStable pins the facade-visible event kind strings — trace
// consumers parse these.
func TestKindNamesStable(t *testing.T) {
	var buf bytes.Buffer
	rec, err := TraceTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rec.Record(Event{Kind: "request", VM: 1, Host: 2})
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"kind":"request"`) {
		t.Fatalf("unexpected serialization: %s", buf.String())
	}
}
