module sheriff

go 1.22
