package sheriff

import (
	"math"
	"testing"

	"sheriff/internal/dcn"
	"sheriff/internal/metrics"
	"sheriff/internal/traces"
)

// TestEndToEndSheriffScenario exercises the complete story the paper
// tells, through the public facade only:
//
//  1. A workload series is forecast with the combined predictor.
//  2. The predicted profile crosses the threshold → pre-alert.
//  3. The rack's shim migrates VMs (PRIORITY → matching → REQUEST).
//  4. The traffic plane reroutes around a hot switch.
//  5. The migration's six-stage timeline and the cluster balance are
//     checked.
func TestEndToEndSheriffScenario(t *testing.T) {
	// --- Prediction phase ---
	trace := traces.CPU(traces.CPUConfig{Hours: 8, Seed: 99}).Values()
	sel, err := NewPredictor(trace[:400], PredictorOptions{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	nextCPU, err := sel.Predict()
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(nextCPU) {
		t.Fatal("prediction NaN")
	}

	// --- Alert phase (forced overload profile) ---
	profile := Profile{CPU: 0.95, Mem: 0.5, IO: 0.2, TRF: 0.6}
	value, fired := EvaluateAlert(profile, DefaultThresholds())
	if !fired || value != 0.95 {
		t.Fatalf("alert = %v/%v", value, fired)
	}

	// --- Management phase ---
	cluster, _, shims, err := NewFatTreeCluster(4, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	hot := cluster.Racks[0].Hosts[0]
	var vms []*VM
	for i := 0; i < 4; i++ {
		vm, err := cluster.AddVM(hot, 20, float64(i+1), false)
		if err != nil {
			t.Fatal(err)
		}
		vms = append(vms, vm)
	}
	before := cluster.WorkloadStdDev()
	rep, err := shims[0].ProcessAlerts([]Alert{{HostID: hot.ID, Value: value}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Migrations) == 0 {
		t.Fatal("no migrations")
	}
	if cluster.WorkloadStdDev() >= before {
		t.Fatalf("balance did not improve: %.2f -> %.2f", before, cluster.WorkloadStdDev())
	}

	// --- Six-stage timeline of the applied migration ---
	moved := rep.Migrations[0]
	if moved.VM.Host() == moved.From {
		t.Fatal("migration record inconsistent")
	}

	// --- Traffic plane ---
	net := NewFlowNetwork(cluster)
	src, dst := cluster.Racks[0].NodeID, cluster.Racks[1].NodeID
	for i := 0; i < 3; i++ {
		if _, err := net.AddFlow(src, dst, 0.5, false); err != nil {
			t.Fatal(err)
		}
	}
	hotSwitches := net.HotSwitches(0.9)
	if len(hotSwitches) == 0 {
		t.Fatal("no hot switch despite 1.5 load on capacity-1 links")
	}
	movedFlows := net.RerouteAroundHot(hotSwitches[0], 0.9)
	if len(movedFlows) == 0 {
		t.Fatal("reroute moved nothing")
	}

	// --- Keep VMs accounted for ---
	total := 0.0
	for _, vm := range vms {
		if vm.Host() == nil {
			t.Fatal("VM lost")
		}
		total += vm.Capacity
	}
	if total != 80 {
		t.Fatalf("capacity changed: %v", total)
	}
}

// TestEndToEndRuntimeWithMetrics runs the assembled runtime and folds its
// step statistics through the streaming metrics, asserting the summaries
// stay coherent.
func TestEndToEndRuntimeWithMetrics(t *testing.T) {
	cluster, model, _, err := NewFatTreeCluster(4, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	cluster.Populate(dcn.PopulateOptions{
		VMsPerHost: 3, MinCapacity: 5, MaxCapacity: 15,
		DependencyProb: 0.4, CrossRackDependencyProb: 0.4, Seed: 123,
	})
	rt, err := NewRuntime(cluster, model, RuntimeOptions{Seed: 123})
	if err != nil {
		t.Fatal(err)
	}
	var sd metrics.Summary
	q, err := metrics.NewQuantile(0.95)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := rt.Run(25)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range hist {
		sd.Observe(s.WorkloadStdDev)
		q.Observe(s.MaxUplinkUtil)
	}
	if sd.Count() != 25 {
		t.Fatalf("summary count = %d", sd.Count())
	}
	if sd.Mean() < 0 || math.IsNaN(sd.Mean()) {
		t.Fatalf("mean stddev = %v", sd.Mean())
	}
	if math.IsNaN(q.Value()) {
		t.Fatal("p95 uplink NaN")
	}
	if q.Value() < 0 {
		t.Fatalf("p95 uplink = %v", q.Value())
	}
}

// TestEndToEndTimelineThroughFacade drives the Fig. 2 timeline on a real
// migration path.
func TestEndToEndTimelineThroughFacade(t *testing.T) {
	cluster, model, _, err := NewFatTreeCluster(4, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	vm, err := cluster.AddVM(cluster.Racks[0].Hosts[0], 15, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := model.MigrationTimeline(vm, cluster.Racks[2].Hosts[0], CostTimelineParams{})
	if err != nil {
		t.Fatal(err)
	}
	if tl.Total() <= 0 || tl.Downtime <= 0 {
		t.Fatalf("timeline = %+v", tl)
	}
	if tl.Downtime > 0.1*tl.Total() {
		t.Fatalf("downtime %.3f not a small fraction of total %.3f", tl.Downtime, tl.Total())
	}
}
